(* High-throughput explicit-state checker over Protocol.S.

   Four design decisions carry the throughput (see mcheck.mli for the
   user-facing contract):

   - process states and messages are hash-consed into small integer
     ids, and a global state is a flat int array: the interned id of
     every process, then every channel as a length-prefixed run of
     interned message ids.  Dedup hashing is two FNV folds over that
     array (a mixed probe/route hash plus an independent stored
     fingerprint), equality is an int compare against an arena slice,
     and successor keys are spliced directly out of the parent's array
     into reusable scratch buffers — the steady-state hot path
     allocates nothing per successor and never deep-traverses (let
     alone marshals) a process state.  Deep hashing happens once per
     *distinct* process state or message, at intern time.

   - transitions are memoized on ids: delivering message [m] to
     process state [s] always yields the same successor, so after the
     first occurrence the checker replays it as an int-keyed lookup,
     never re-running the protocol.  Per-process views are cached at
     intern time, so predicate checks are pointer reads.

   - the visited set is sharded by hash range: each shard owns a slice
     of key space (routed by the high bits of the mixed hash, see
     Stdext.Pool.shard_of) with its own open-addressing slot array and
     key arena, so the admission phase fans the candidate stream out
     over a domain pool and every domain inserts into its own shard
     with no locking.  Admission order is still globally fixed — every
     candidate carries a (frontier-index, emission-index) tag and each
     shard admits its candidates in tag order — so ids, traces and
     stats are identical for every ~jobs value AND every shard count.
     When the hot arenas outgrow ~mem_budget words, they are flushed
     to per-shard Stdext.Blockfile temp files (flat int words, no
     Marshal); frontier states are re-read by word offset at expansion
     time and spilled keys dedup against a stored ~125-bit fingerprint
     (mixed hash + independent FNV-64 fold), so visited capacity is
     bounded by disk, not RAM.

   - the BFS is level-synchronous with parent-pointer traces, swept in
     fixed-size chunks.  Each chunk runs a read-only expansion phase
     (predicate checks, successor splicing, per-shard routing; memo
     misses flag the whole parent), a serial fixup that recomputes
     flagged parents in frontier order (so intern ids stay
     deterministic), and a shard-parallel admission phase.  Near the
     ~max_states bound the admission falls back to a serial sweep in
     global tag order, so the hard bound admits exactly the states the
     serial checker would.  Per-state resident memory is O(1): three
     packed index words (location, fingerprint, parent+label) plus the
     key itself until it spills.

   Optional partial-order reduction (~por) explores, at states that
   have one, only the deliveries into a "quiet receiver": the lowest
   process p that is hungry with entry disabled (no client move, and
   none can be enabled by other processes' moves), whose in-channels
   are all nonempty, and whose pending head deliveries are all silent
   (no sends) and leave p hungry.  Those deliveries commute with every
   other enabled action (FIFO appends land behind the heads), are
   invisible to mode-level predicates, and strictly consume in-flight
   messages (so no cycle is reduced everywhere and nothing is deferred
   forever).  The ample decision reads only memoized data, never the
   visited set, so reduced runs are as jobs- and shard-deterministic
   as exhaustive ones.  See EXPERIMENTS.md for the soundness argument;
   the registry's por_safe flag gates which protocols opt in. *)

module Vec = Stdext.Vec
module Blockfile = Stdext.Blockfile

type stats = {
  name : string;
  explored : int;
  visited : int;
  frontier_peak : int;
  depth_reached : int;
  truncated : bool;
  peak_mem_words : int;
  spill_bytes : int;
}

type 'v result =
  | Ok of stats
  | Violation of {
      trace : string list;
      witness : 'v;
      path : 'v list;
      stats : stats;
    }

(* Compact action labels; rendered to strings only when a trace is
   reconstructed, so the hot path never sprintf-allocates. *)
type label =
  | L_root
  | L_seed of string
  | L_request of int
  | L_enter of int
  | L_release of int
  | L_deliver of int * int
  | L_wrap of int

let label_to_string = function
  | L_root -> "init"
  | L_seed tag -> tag
  | L_request p -> Printf.sprintf "request(%d)" p
  | L_enter p -> Printf.sprintf "enter(%d)" p
  | L_release p -> Printf.sprintf "release(%d)" p
  | L_deliver (src, dst) -> Printf.sprintf "deliver(%d->%d)" src dst
  | L_wrap p -> Printf.sprintf "wrap(%d)" p

(* Hot-path label encoding: client and delivery labels fit a packed
   int (kind in bits 12+, operands in two 6-bit fields), so
   enumerating a successor allocates nothing; the variant is
   materialized only for states actually admitted.  Seed labels
   (L_root / L_seed) never flow through the hot path. *)
let il_request p = (1 lsl 12) lor p
let il_enter p = (2 lsl 12) lor p
let il_release p = (3 lsl 12) lor p
let il_deliver src dst = (4 lsl 12) lor (src lsl 6) lor dst
let il_wrap p = (5 lsl 12) lor p

let decode_ilabel il =
  let a = (il lsr 6) land 63 and b = il land 63 in
  match il lsr 12 with
  | 1 -> L_request b
  | 2 -> L_enter b
  | 3 -> L_release b
  | 5 -> L_wrap b
  | _ -> L_deliver (a, b)

(* Two hashes in one pass over the key: [h1] is an FNV-32 fold pushed
   through a splitmix-style finalizer — its low bits probe the shard's
   slot array, its high bits pick the shard (Pool.shard_of), so the
   two never correlate; [fp] is an independent FNV-64-style fold kept
   as the stored fingerprint that stands in for a spilled key's bytes
   at dedup time.  Together a spilled-key match asserts ~125 hash
   bits plus the exact length. *)
let hash2 (k : int array) off len =
  let h = ref 0x811c9dc5 in
  let g = ref 0x2545F4914F6CDD1D in
  for i = off to off + len - 1 do
    let x = k.(i) in
    h := (!h * 0x01000193) lxor x;
    g := (!g lxor x) * 0x100000001b3
  done;
  let a = !h * 0x9e3779b97f4a7c1 in
  let a = a lxor (a lsr 31) in
  let a = a * 0x2545F4914F6CDD1D in
  ((a lxor (a lsr 29)) land max_int, !g land max_int)

(* A growable int buffer with exposed backing, so record streams can
   be built by blits and parsed by direct indexing (Vec boxes its
   interface behind bounds checks; candidate records are the hot
   aisle of the admission phase). *)
module Buf = struct
  type t = { mutable data : int array; mutable len : int }

  let create () = { data = [||]; len = 0 }

  let ensure b extra =
    let need = b.len + extra in
    if need > Array.length b.data then begin
      let d = Array.make (max need (max 16 (2 * Array.length b.data))) 0 in
      Array.blit b.data 0 d 0 b.len;
      b.data <- d
    end

  let push b x =
    ensure b 1;
    b.data.(b.len) <- x;
    b.len <- b.len + 1

  let blit b (src : int array) off len =
    ensure b len;
    Array.blit src off b.data b.len len;
    b.len <- b.len + len

  let clear b = b.len <- 0
  let contents b = Array.sub b.data 0 b.len
end

(* ------------------------------------------------------------------ *)
(* The sharded visited set.  Each shard owns a hash-range slice of key
   space: an open-addressing slot array (interleaved (local id + 1,
   hash) pairs, one cache line per probe), a hot int arena holding the
   keys admitted since the last spill, and three packed index words
   per state — location ((global word offset << 20) | length),
   fingerprint, and parent ((parent ref + 1) << 16 | label).  A state
   ref packs (local id << 6) | shard.  Shard-local reads and inserts
   never touch another shard, so the admission phase runs one domain
   per shard with no synchronization; all cross-shard coordination
   happens in the serial parts of the sweep.

   Spill: when the hot arenas together exceed [mem_budget] words (the
   checkpoint runs between chunks), every shard appends its arena to
   its own Blockfile and resets; [disk] is the count of words flushed,
   which makes stored offsets stable global offsets.  A spilled key is
   re-read positionally for expansion and compared by fingerprint for
   dedup. *)
module Table = struct
  type shard = {
    mutable slots : int array;  (* 2i: local id + 1 (0 = empty); 2i+1: h1 *)
    mutable mask : int;  (* slot-pair count - 1, a power of 2 *)
    mutable count : int;
    mutable arena : int array;  (* keys admitted since the last spill *)
    mutable used : int;  (* hot words *)
    mutable disk : int;  (* words flushed; global offset of arena.(0) *)
    fp : int Vec.t;  (* local id -> stored fingerprint *)
    loc : int Vec.t;  (* local id -> (global offset lsl 20) lor length *)
    parents : int Vec.t;  (* local id -> packed (parent ref, label) *)
    mutable file : Blockfile.t option;
  }

  type t = {
    shards : shard array;
    nshards : int;
    spill_dir : string;
    mem_budget : int;
    mutable spill_words : int;
    mutable peak_words : int;
  }

  let len_bits = 20
  let len_mask = (1 lsl len_bits) - 1

  let create ~shards ~mem_budget ~spill_dir =
    if shards < 1 || shards > 64 then
      invalid_arg "Mcheck: need 1 <= shards <= 64";
    if mem_budget < 1 then invalid_arg "Mcheck: need mem_budget >= 1";
    { shards =
        Array.init shards (fun _ ->
            { slots = Array.make (2 * 1024) 0;
              mask = 1023;
              count = 0;
              arena = Array.make 4096 0;
              used = 0;
              disk = 0;
              fp = Vec.create ();
              loc = Vec.create ();
              parents = Vec.create ();
              file = None });
      nshards = shards;
      spill_dir;
      mem_budget;
      spill_words = 0;
      peak_words = 0 }

  let route t h1 = Stdext.Pool.shard_of ~hash:h1 ~shards:t.nshards
  let pack_ref ~shard ~local = (local lsl 6) lor shard

  let count t = Array.fold_left (fun a sh -> a + sh.count) 0 t.shards
  let hot_words t = Array.fold_left (fun a sh -> a + sh.used) 0 t.shards

  let key_len t r = Vec.get t.shards.(r land 63).loc (r lsr 6) land len_mask
  let parent_packed t r = Vec.get t.shards.(r land 63).parents (r lsr 6)

  (* Equality of stored state [local] against a candidate key: length,
     then a word compare when the key is hot, the fingerprint when it
     has spilled (the caller already matched the 62-bit slot hash). *)
  let matches sh local ~fp (k : int array) koff klen =
    let l = Vec.get sh.loc local in
    l land len_mask = klen
    &&
    let off = l lsr len_bits in
    if off >= sh.disk then begin
      let a = sh.arena in
      let base = off - sh.disk in
      let rec eq i = i = klen || (a.(base + i) = k.(koff + i) && eq (i + 1)) in
      eq 0
    end
    else Vec.get sh.fp local = fp

  (* Read-only membership probe; safe from several domains while no
     insert into this shard is in flight. *)
  let mem_sh sh ~h1 ~fp k koff klen =
    let mask = sh.mask and slots = sh.slots in
    let rec probe i =
      match slots.(2 * i) with
      | 0 -> false
      | s ->
        (slots.((2 * i) + 1) = h1 && matches sh (s - 1) ~fp k koff klen)
        || probe ((i + 1) land mask)
    in
    probe (h1 land mask)

  let grow_slots sh =
    let pairs = (sh.mask + 1) * 2 in
    let slots = Array.make (2 * pairs) 0 in
    let mask = pairs - 1 in
    for i = 0 to sh.mask do
      match sh.slots.(2 * i) with
      | 0 -> ()
      | s ->
        let h = sh.slots.((2 * i) + 1) in
        let rec place j =
          if slots.(2 * j) = 0 then begin
            slots.(2 * j) <- s;
            slots.((2 * j) + 1) <- h
          end
          else place ((j + 1) land mask)
        in
        place (h land mask)
    done;
    sh.slots <- slots;
    sh.mask <- mask

  let append_arena sh (k : int array) koff klen =
    if sh.used + klen > Array.length sh.arena then begin
      let arena =
        Array.make (max (Array.length sh.arena * 2) (sh.used + klen)) 0
      in
      Array.blit sh.arena 0 arena 0 sh.used;
      sh.arena <- arena
    end;
    Array.blit k koff sh.arena sh.used klen;
    sh.used <- sh.used + klen

  (* One probe pass answers "seen before?" and inserts on miss.
     Returns the existing local id (>= 0), or [-local - 1] for a fresh
     insert.  Shard-local: safe to run one call per shard
     concurrently. *)
  let find_or_add sh ~h1 ~fp (k : int array) koff klen ~parent =
    if 2 * (sh.count + 1) > sh.mask then grow_slots sh;
    let rec probe i =
      match sh.slots.(2 * i) with
      | 0 ->
        let local = sh.count in
        sh.slots.(2 * i) <- local + 1;
        sh.slots.((2 * i) + 1) <- h1;
        sh.count <- local + 1;
        if klen > len_mask then failwith "Mcheck: state key exceeds 2^20 words";
        Vec.push sh.loc (((sh.disk + sh.used) lsl len_bits) lor klen);
        Vec.push sh.fp fp;
        Vec.push sh.parents parent;
        append_arena sh k koff klen;
        -local - 1
      | s ->
        if sh.slots.((2 * i) + 1) = h1 && matches sh (s - 1) ~fp k koff klen
        then s - 1
        else probe ((i + 1) land sh.mask)
    in
    probe (h1 land sh.mask)

  (* Serial bounded admission (seeds and the near-max_states sweep):
     -2 = bound hit on a novel key (the caller's [truncated]), -1 =
     already visited (or bound hit on a visited key), else the fresh
     ref. *)
  let admit t (k : int array) koff klen ~parent ~max_states =
    let h1, fp = hash2 k koff klen in
    let si = route t h1 in
    let sh = t.shards.(si) in
    if count t >= max_states then
      if mem_sh sh ~h1 ~fp k koff klen then -1 else -2
    else
      match find_or_add sh ~h1 ~fp k koff klen ~parent with
      | r when r >= 0 -> -1
      | fresh -> pack_ref ~shard:si ~local:(-fresh - 1)

  (* Load the key of state [r] into [buf]: a blit when hot, a
     positional Blockfile read when spilled.  [readers] is the
     caller's per-shard read-handle cache (one open fd per shard per
     sweeping domain, so concurrent expansion never shares a seek
     pointer). *)
  let read t (readers : Blockfile.reader option array) r (buf : int array) =
    let si = r land 63 in
    let sh = t.shards.(si) in
    let l = Vec.get sh.loc (r lsr 6) in
    let off = l lsr len_bits and len = l land len_mask in
    if off >= sh.disk then Array.blit sh.arena (off - sh.disk) buf 0 len
    else begin
      let rd =
        match readers.(si) with
        | Some rd -> rd
        | None ->
          let rd =
            match sh.file with
            | Some f -> Blockfile.reader f
            | None -> assert false (* off < disk implies a spill happened *)
          in
          readers.(si) <- Some rd;
          rd
      in
      Blockfile.pread rd ~woff:off buf ~off:0 ~len
    end

  (* Resident words at a checkpoint: the hot arenas plus the 3-word
     per-state index (location, fingerprint, parent).  Slot-array
     geometry is excluded on purpose — it depends on the shard count,
     and this figure is asserted identical across shard counts (it
     adds ~4 words/state; EXPERIMENTS.md documents the accounting). *)
  let resident_words t =
    Array.fold_left (fun a sh -> a + sh.used + (3 * sh.count)) 0 t.shards

  let note_peak t =
    let w = resident_words t in
    if w > t.peak_words then t.peak_words <- w

  (* Between-chunks checkpoint: record the residency peak and, when
     the hot arenas outgrow the budget, stream every shard's arena to
     its blockfile.  Runs at fixed points of the sweep (after seeding
     and after each chunk's admission), so peak and spill figures are
     identical for every ~jobs and every shard count. *)
  let checkpoint t =
    note_peak t;
    if hot_words t > t.mem_budget then
      Array.iter
        (fun sh ->
          if sh.used > 0 then begin
            let f =
              match sh.file with
              | Some f -> f
              | None ->
                let f =
                  Blockfile.create ~dir:t.spill_dir ~prefix:"mcheck-shard"
                in
                sh.file <- Some f;
                f
            in
            let at = Blockfile.append f sh.arena ~off:0 ~len:sh.used in
            assert (at = sh.disk);
            t.spill_words <- t.spill_words + sh.used;
            sh.disk <- sh.disk + sh.used;
            sh.used <- 0;
            if Array.length sh.arena > 65536 then sh.arena <- Array.make 4096 0
          end)
        t.shards

  let cleanup t =
    Array.iter
      (fun sh ->
        match sh.file with
        | Some f ->
          Blockfile.remove f;
          sh.file <- None
        | None -> ())
      t.shards
end

module Search (P : Graybox.Protocol.S) = struct
  (* Deep-traversal parameters so states holding maps and sets hash on
     their full contents, not just the first ten nodes; paid once per
     distinct process state. *)
  module StateH = Hashtbl.Make (struct
    type t = P.state

    let equal (a : P.state) b = a = b
    let hash s = Hashtbl.hash_param 64 256 s
  end)

  module MsgH = Hashtbl.Make (struct
    type t = Graybox.Msg.t

    let equal (a : Graybox.Msg.t) b = a = b
    let hash m = Hashtbl.hash_param 64 256 m
  end)

  (* A memoized transition: successor process id plus sends as
     (dst, msg id) pairs. *)
  type memo = (int * (int * int) list) option ref

  (* Interners and transition memos.  All writes happen in the serial
     phases (seeding, serial sweep, miss fixup, replay); parallel
     expansion only reads. *)
  type ctx = {
    n : int;
    wrapper : Graybox.Wrapper.t option;
        (* box-composed wrapper term: adds a per-process correction
           action (sends only, no state change), memoized like the
           client actions.  The checker abstracts the W'(δ) timer to
           zero — it explores the timer-expired interleavings, which
           contain every behaviour the rate-limited wrapper has. *)
    proc_id : int StateH.t;
    proc_of : P.state Vec.t;
    view_of : Graybox.View.t Vec.t;  (* cached per interned process *)
    msg_id : int MsgH.t;
    msg_of : Graybox.Msg.t Vec.t;
    (* client-action memos, dense by process id; [m_enter]'s inner
       option is [try_enter]'s own: [Some None] = computed, disabled *)
    m_request : memo Vec.t;
    m_enter : (int * (int * int) list) option option ref Vec.t;
    m_release : memo Vec.t;
    m_wrap : (int * int) list option ref Vec.t;
        (* wrapper sends per process id (the successor process state is
           the process itself) *)
    (* delivery memo: open-addressing map from the packed int of
       [deliver_key] to an index into [d_res]; slots interleave
       (key + 1, index) so a hit costs one probe and zero allocation *)
    mutable d_slots : int array;
    mutable d_mask : int;
    mutable d_count : int;
    d_res : (int * (int * int) list) Vec.t;
  }

  let make_ctx ?wrapper ~n () =
    if n < 1 || n > 64 then invalid_arg "Mcheck: need 1 <= n <= 64";
    { n;
      wrapper;
      proc_id = StateH.create 1024;
      proc_of = Vec.create ();
      view_of = Vec.create ();
      msg_id = MsgH.create 256;
      msg_of = Vec.create ();
      m_request = Vec.create ();
      m_enter = Vec.create ();
      m_release = Vec.create ();
      m_wrap = Vec.create ();
      d_slots = Array.make (2 * 4096) 0;
      d_mask = 4095;
      d_count = 0;
      d_res = Vec.create () }

  let intern_proc ctx s =
    match StateH.find_opt ctx.proc_id s with
    | Some id -> id
    | None ->
      let id = Vec.length ctx.proc_of in
      Vec.push ctx.proc_of s;
      Vec.push ctx.view_of (P.view s);
      Vec.push ctx.m_request (ref None);
      Vec.push ctx.m_enter (ref None);
      Vec.push ctx.m_release (ref None);
      Vec.push ctx.m_wrap (ref None);
      StateH.add ctx.proc_id s id;
      id

  let intern_msg ctx m =
    match MsgH.find_opt ctx.msg_id m with
    | Some id -> id
    | None ->
      let id = Vec.length ctx.msg_of in
      if id >= 1 lsl 20 then
        failwith "Mcheck: more than 2^20 distinct messages";
      Vec.push ctx.msg_of m;
      MsgH.add ctx.msg_id m id;
      id

  (* Injective packing: mid < 2^20 (guarded in intern_msg), src < 64
     (guarded in make_ctx), pid below 2^37 (beyond any intern count
     reachable under the visited-set bound). *)
  let deliver_key pid ~src mid = (pid lsl 26) lor (mid lsl 6) lor src

  (* Fibonacci scramble; take bits from the middle, the low bits of a
     multiplicative hash are weak. *)
  let dhash dk = (dk * 0x9e3779b97f4a7c1) lsr 20

  (* -1 if absent, else the index into [d_res].  Read-only: safe from
     several domains while no [deliver_add] is in flight. *)
  let deliver_find ctx dk =
    let mask = ctx.d_mask in
    let slots = ctx.d_slots in
    let rec probe i =
      let k = slots.(2 * i) in
      if k = 0 then -1
      else if k = dk + 1 then slots.((2 * i) + 1)
      else probe ((i + 1) land mask)
    in
    probe (dhash dk land mask)

  let deliver_add ctx dk r =
    if 2 * (ctx.d_count + 1) > ctx.d_mask then begin
      let pairs = (ctx.d_mask + 1) * 2 in
      let slots = Array.make (2 * pairs) 0 in
      let mask = pairs - 1 in
      for i = 0 to ctx.d_mask do
        let k = ctx.d_slots.(2 * i) in
        if k <> 0 then begin
          let rec place j =
            if slots.(2 * j) = 0 then begin
              slots.(2 * j) <- k;
              slots.((2 * j) + 1) <- ctx.d_slots.((2 * i) + 1)
            end
            else place ((j + 1) land mask)
          in
          place (dhash (k - 1) land mask)
        end
      done;
      ctx.d_slots <- slots;
      ctx.d_mask <- mask
    end;
    let idx = Vec.length ctx.d_res in
    Vec.push ctx.d_res r;
    let mask = ctx.d_mask in
    let rec place j =
      if ctx.d_slots.(2 * j) = 0 then begin
        ctx.d_slots.(2 * j) <- dk + 1;
        ctx.d_slots.((2 * j) + 1) <- idx
      end
      else place ((j + 1) land mask)
    in
    place (dhash dk land mask);
    ctx.d_count <- ctx.d_count + 1

  let intern_sends ctx sends =
    List.map (fun (dst, m) -> (dst, intern_msg ctx m)) sends

  let initial ctx =
    let n = ctx.n in
    let k = Array.make (n + (n * n)) 0 in
    for p = 0 to n - 1 do
      k.(p) <- intern_proc ctx (P.init ~n p)
    done;
    k

  (* Reusable per-sweep buffers: parent key, successor key, views,
     channel offsets, plus this sweep's spill read handles.  A scratch
     belongs to exactly one sequential sweep (the serial parts, one
     expansion piece, a replay). *)
  type scratch = {
    mutable kbuf : int array;
    mutable sbuf : int array;
    vbuf : Graybox.View.t array;
    offs : int array;
    readers : Blockfile.reader option array;
  }

  let make_scratch ctx =
    { kbuf = Array.make 256 0;
      sbuf = Array.make 256 0;
      vbuf = Array.make ctx.n (Vec.get ctx.view_of 0);
      offs = Array.make (ctx.n * ctx.n) 0;
      readers = Array.make 64 None }

  let close_scratch st =
    Array.iteri
      (fun i rd ->
        match rd with
        | Some rd ->
          Blockfile.close_reader rd;
          st.readers.(i) <- None
        | None -> ())
      st.readers

  let ensure_kbuf st l =
    if Array.length st.kbuf < l then
      st.kbuf <- Array.make (max l (2 * Array.length st.kbuf)) 0

  let ensure_sbuf st l =
    if Array.length st.sbuf < l then
      st.sbuf <- Array.make (max l (2 * Array.length st.sbuf)) 0

  (* The views of the state in [st.kbuf], into [st.vbuf].  The array
     is reused across states; predicates must not retain it. *)
  let views_into ctx st =
    for p = 0 to ctx.n - 1 do
      st.vbuf.(p) <- Vec.get ctx.view_of st.kbuf.(p)
    done

  let fill_offsets ctx st =
    let n = ctx.n in
    let off = ref n in
    for ci = 0 to (n * n) - 1 do
      st.offs.(ci) <- !off;
      off := !off + 1 + st.kbuf.(!off)
    done

  (* ---------------- successor key splicing ---------------- *)

  let rec count_adds src n ci = function
    | [] -> 0
    | (dst, _) :: tl ->
      (if (src * n) + dst = ci then 1 else 0) + count_adds src n ci tl

  let rec put_adds (s : int array) pos src n ci = function
    | [] -> pos
    | (dst, mid) :: tl ->
      if (src * n) + dst = ci then begin
        s.(pos) <- mid;
        put_adds s (pos + 1) src n ci tl
      end
      else put_adds s pos src n ci tl

  (* Write into [st.sbuf] the successor key for: process [p] stepping
     to [pid'], optionally consuming the front message of channel
     [pop] (-1 for none), sending [sends'] from [src].  Returns the
     successor key length.  Channel contents move by int blits only. *)
  let splice ctx st klen ~p ~pid' ~pop ~src ~sends' =
    let n = ctx.n in
    let k = st.kbuf in
    match (sends', pop) with
    | [], -1 ->
      ensure_sbuf st klen;
      Array.blit k 0 st.sbuf 0 klen;
      st.sbuf.(p) <- pid';
      klen
    | _ ->
      let slen =
        klen + List.length sends' - (if pop >= 0 then 1 else 0)
      in
      ensure_sbuf st slen;
      let s = st.sbuf in
      Array.blit k 0 s 0 n;
      s.(p) <- pid';
      let pos = ref n in
      for ci = 0 to (n * n) - 1 do
        let off = st.offs.(ci) in
        let len = k.(off) in
        let drop = if ci = pop then 1 else 0 in
        s.(!pos) <- len - drop + count_adds src n ci sends';
        incr pos;
        for j = drop to len - 1 do
          s.(!pos) <- k.(off + 1 + j);
          incr pos
        done;
        pos := put_adds s !pos src n ci sends'
      done;
      slen

  (* Serial transition computation: decode, run the protocol, intern
     and memoize.  Must not race with parallel expansion. *)
  let compute_client ctx pid cell step =
    match !cell with
    | Some r -> r
    | None ->
      let s', sends = step (Vec.get ctx.proc_of pid) in
      let r = (intern_proc ctx s', intern_sends ctx sends) in
      cell := Some r;
      r

  let compute_enter ctx pid cell =
    match !cell with
    | Some r -> r
    | None ->
      let r =
        match P.try_enter (Vec.get ctx.proc_of pid) with
        | None -> None
        | Some (s', sends) ->
          Some (intern_proc ctx s', intern_sends ctx sends)
      in
      cell := Some r;
      r

  let compute_wrap ctx w pid cell =
    match !cell with
    | Some r -> r
    | None ->
      let v = Vec.get ctx.view_of pid in
      let r = intern_sends ctx (Graybox.Wrapper.eval w v ~n:ctx.n ~timer:0) in
      cell := Some r;
      r

  let compute_deliver ctx pid ~src mid =
    let dk = deliver_key pid ~src mid in
    let idx = deliver_find ctx dk in
    if idx >= 0 then Vec.get ctx.d_res idx
    else begin
      let s', sends =
        P.on_message ~from:src (Vec.get ctx.msg_of mid)
          (Vec.get ctx.proc_of pid)
      in
      let r = (intern_proc ctx s', intern_sends ctx sends) in
      deliver_add ctx dk r;
      r
    end

  (* ---------------- partial-order reduction ---------------- *)

  exception Por_miss

  (* The quiet-receiver ample set: the lowest process p that is hungry
     with entry disabled (so p has no client move, and no other
     process's move can enable one — nothing else writes p's state),
     every in-channel (q,p), q <> p, nonempty, the self-channel empty,
     and every pending head delivery into p silent (no sends) and
     leaving p hungry.  At such a state only the deliveries into p are
     explored: they commute with every other enabled action (FIFO
     appends land behind the heads), are invisible to mode-level
     predicates, and strictly consume in-flight messages, so no cycle
     of the reduced graph is reduced at every state.  The decision
     reads only views, channel heads and memos — never the visited set
     — so it is identical for every ~jobs and shard count; in a
     read-only sweep a missing memo raises [Por_miss] and the parent
     is recomputed serially through the read-write path, which takes
     the same decision. *)
  let ample_owner ctx ~rw st =
    let n = ctx.n in
    if n < 2 then -1
    else begin
      let rec try_p p =
        if p >= n then -1
        else
          let pid = st.kbuf.(p) in
          let v = Vec.get ctx.view_of pid in
          if not (Graybox.View.hungry v) then try_p (p + 1)
          else begin
            let enter =
              if rw then compute_enter ctx pid (Vec.get ctx.m_enter pid)
              else
                match !(Vec.get ctx.m_enter pid) with
                | Some r -> r
                | None -> raise Por_miss
            in
            if enter <> None then try_p (p + 1)
            else begin
              let ok = ref true in
              let q = ref 0 in
              while !ok && !q < n do
                let src = !q in
                let off = st.offs.((src * n) + p) in
                if src = p then begin
                  (* no protocol sends to itself; a nonempty
                     self-channel (only an exotic seed could build
                     one) disqualifies conservatively *)
                  if st.kbuf.(off) > 0 then ok := false
                end
                else if st.kbuf.(off) = 0 then ok := false
                else begin
                  let mid = st.kbuf.(off + 1) in
                  let pid', sends' =
                    if rw then compute_deliver ctx pid ~src mid
                    else begin
                      let idx = deliver_find ctx (deliver_key pid ~src mid) in
                      if idx >= 0 then Vec.get ctx.d_res idx
                      else raise Por_miss
                    end
                  in
                  if
                    sends' <> []
                    || not (Graybox.View.hungry (Vec.get ctx.view_of pid'))
                  then ok := false
                end;
                incr q
              done;
              if !ok then p else try_p (p + 1)
            end
          end
      in
      try_p 0
    end

  (* The maximally nondeterministic client (request / enter / release
     whenever the view allows) interleaved with every FIFO delivery.
     Iterates the successors of the state in [st.kbuf] (length
     [klen]), calling [f label slen] with each successor key in
     [st.sbuf] — valid only during [f] — in a fixed order (client
     actions by process, then deliveries by channel), so every sweep
     enumerates identically.  With [por = true], a state that has an
     ample owner emits only the deliveries into it (in channel
     order).

     [rw = true]: serial context — memo misses run the protocol and
     cache the result; [miss] is never called.
     [rw = false]: parallel context — the ctx is read-only and a memo
     miss (in enumeration or in the ample decision) invokes [miss]
     instead; the serial fixup recomputes that parent via the
     [rw = true] path.  Both paths build keys with [splice], so the
     results are identical. *)
  let iter_successors ctx ~rw ~por st klen ~miss ~f =
    let n = ctx.n in
    fill_offsets ctx st;
    let emit il p pop src (pid', sends') =
      f il (splice ctx st klen ~p ~pid' ~pop ~src ~sends')
    in
    let owner =
      if not por then -1
      else
        match ample_owner ctx ~rw st with
        | p -> p
        | exception Por_miss -> -2
    in
    if owner = -2 then miss 0
    else if owner >= 0 then begin
      let p = owner in
      let pid = st.kbuf.(p) in
      for src = 0 to n - 1 do
        let ci = (src * n) + p in
        let off = st.offs.(ci) in
        if st.kbuf.(off) > 0 then begin
          let mid = st.kbuf.(off + 1) in
          let r =
            if rw then compute_deliver ctx pid ~src mid
            else Vec.get ctx.d_res (deliver_find ctx (deliver_key pid ~src mid))
          in
          emit (il_deliver src p) p ci p r
        end
      done
    end
    else begin
      for p = 0 to n - 1 do
        let pid = st.kbuf.(p) in
        let v = Vec.get ctx.view_of pid in
        if Graybox.View.thinking v then begin
          let cell = Vec.get ctx.m_request pid in
          if rw then
            emit (il_request p) p (-1) p (compute_client ctx pid cell P.request_cs)
          else
            match !cell with
            | Some r -> emit (il_request p) p (-1) p r
            | None -> miss (il_request p)
        end;
        if Graybox.View.hungry v then begin
          let cell = Vec.get ctx.m_enter pid in
          if rw then (
            match compute_enter ctx pid cell with
            | None -> ()  (* entry not enabled *)
            | Some r -> emit (il_enter p) p (-1) p r)
          else
            match !cell with
            | Some None -> ()  (* computed: entry not enabled *)
            | Some (Some r) -> emit (il_enter p) p (-1) p r
            | None -> miss (il_enter p)
        end;
        if Graybox.View.eating v then begin
          let cell = Vec.get ctx.m_release pid in
          if rw then
            emit (il_release p) p (-1) p (compute_client ctx pid cell P.release_cs)
          else
            match !cell with
            | Some r -> emit (il_release p) p (-1) p r
            | None -> miss (il_release p)
        end;
        (match ctx.wrapper with
        | None -> ()
        | Some w -> (
          let cell = Vec.get ctx.m_wrap pid in
          let sends =
            if rw then Some (compute_wrap ctx w pid cell) else !cell
          in
          match sends with
          | None -> miss (il_wrap p)
          | Some sends ->
            (* Throttle: a correction already in flight is not re-sent
               — without this the wrapper's (state-preserving) action
               would re-enable forever and pump channels unboundedly.
               Reads only the parent key, so both sweep modes and every
               domain take the same decision. *)
            let fresh =
              List.filter
                (fun (dst, mid) ->
                  let off = st.offs.((p * n) + dst) in
                  let len = st.kbuf.(off) in
                  let rec inflight j =
                    j < len && (st.kbuf.(off + 1 + j) = mid || inflight (j + 1))
                  in
                  not (inflight 0))
                sends
            in
            if fresh <> [] then emit (il_wrap p) p (-1) p (pid, fresh)))
      done;
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          let ci = (src * n) + dst in
          let off = st.offs.(ci) in
          if st.kbuf.(off) > 0 then begin
            let mid = st.kbuf.(off + 1) in
            let pid = st.kbuf.(dst) in
            if rw then
              emit (il_deliver src dst) dst ci dst
                (compute_deliver ctx pid ~src mid)
            else begin
              let idx = deliver_find ctx (deliver_key pid ~src mid) in
              if idx >= 0 then
                emit (il_deliver src dst) dst ci dst (Vec.get ctx.d_res idx)
              else miss (il_deliver src dst)
            end
          end
        done
      done
    end

  (* ---------------- everywhere-mode seeding ---------------- *)

  (* Arbitrary in-flight messages: every kind, stamped low so they look
     like plausible leftovers rather than clock corruption (which would
     defeat any timestamp-ordered protocol, correct or not). *)
  let inflight_msgs src =
    let ts c = Clocks.Timestamp.make ~clock:c ~pid:src in
    [ Graybox.Msg.Request (ts 1);
      Graybox.Msg.Reply (ts 1);
      Graybox.Msg.Release (ts 1);
      Graybox.Msg.Request (ts 7) ]

  let rec take k = function
    | [] -> []
    | _ when k <= 0 -> []
    | x :: tl -> x :: take (k - 1) tl

  let everywhere_seeds ?(inflight = true) ~max_seeds ctx =
    let n = ctx.n in
    let base = initial ctx in
    let corrupted =
      List.concat_map
        (fun p ->
          List.mapi
            (fun i s' ->
              let k = Array.copy base in
              k.(p) <- intern_proc ctx s';
              (L_seed (Printf.sprintf "corrupt(%d#%d)" p i), k))
            (P.perturb ~n (Vec.get ctx.proc_of base.(p))))
        (List.init n Fun.id)
    in
    (* [base]'s channels are all empty, so channel [ci]'s length slot
       sits at [n + ci]: insert one message by splitting there. *)
    let inflight =
      if not inflight then []
      else
      List.concat_map
        (fun src ->
          List.concat_map
            (fun dst ->
              if src = dst then []
              else
                List.map
                  (fun m ->
                    let ci = (src * n) + dst in
                    let k = Array.make (Array.length base + 1) 0 in
                    Array.blit base 0 k 0 (n + ci);
                    k.(n + ci) <- 1;
                    k.(n + ci + 1) <- intern_msg ctx m;
                    Array.blit base (n + ci + 1) k (n + ci + 2)
                      (Array.length base - (n + ci + 1));
                    ( L_seed
                        (Printf.sprintf "inflight(%d->%d,%s)" src dst
                           (Graybox.Msg.to_string m)),
                      k ))
                  (inflight_msgs src))
            (List.init n Fun.id))
        (List.init n Fun.id)
    in
    (L_root, base) :: take max_seeds (corrupted @ inflight)

  (* The paper's §4 deadlock, as seeds: processes whose requests were
     lost in flight.  [wedge_seeds ctx] is the all-lost state (every
     process hungry, channels empty — without a wrapper, no transition
     is enabled at all) plus each single-loss state.  The recovery leg
     of the synthesis oracle demands that entry be reachable again
     from every one of them. *)
  let wedge_seeds ctx =
    let n = ctx.n in
    let base = initial ctx in
    let hungry p =
      let s, _lost_sends = P.request_cs (Vec.get ctx.proc_of base.(p)) in
      intern_proc ctx s
    in
    let all = Array.copy base in
    for p = 0 to n - 1 do
      all.(p) <- hungry p
    done;
    (L_seed "wedge(all)", all)
    :: List.init n (fun p ->
           let k = Array.copy base in
           k.(p) <- hungry p;
           (L_seed (Printf.sprintf "wedge(%d)" p), k))

  (* ---------------- the level-synchronous BFS ---------------- *)

  (* Candidate records flow from expansion to admission as flat int
     runs: [tag; seq; il; h1; fp; klen; key words].  [tag] is the
     parent's index in the level, [seq] the emission index within the
     parent — (tag, seq) is the global admission order, which neither
     the domain count nor the shard count can perturb. *)
  let rec_words = 6

  (* One expansion piece's results: the first violating tag (with its
     witness views), the tags whose expansion hit a memo miss, and the
     per-shard candidate records of the clean parents. *)
  type a_res = {
    r_bad : int;
    r_witness : Graybox.View.t array option;
    r_misses : Buf.t;
    r_buckets : Buf.t array;
    r_counts : int array;
  }

  (* States per chunk.  Fixed (never derived from ~jobs): chunk
     boundaries are spill/peak checkpoints and violation cut points,
     so they must be identical for every domain count. *)
  let chunk_states = 8192

  let run ?wrapper ~n ~jobs ~shards ~max_depth ~max_states ~mem_budget
      ~spill_dir ~por ~name ~seeds predicate =
    if jobs < 1 then invalid_arg "Mcheck: need jobs >= 1";
    if max_states < 1 then invalid_arg "Mcheck: need max_states >= 1";
    if por && wrapper <> None then
      invalid_arg
        "Mcheck: --por is not sound under a composed wrapper (ample sets \
         ignore wrapper moves)";
    let ctx = make_ctx ?wrapper ~n () in
    let table = Table.create ~shards ~mem_budget ~spill_dir in
    let nshards = table.Table.nshards in
    let seed_labels : label Vec.t = Vec.create () in
    let truncated = ref false in
    let explored = ref 0 in
    let frontier_peak = ref 0 in
    let depth_reached = ref 0 in
    (* (tag, ref, witness views) of the first violation in frontier
       order, if any *)
    let violation = ref None in
    (* Seeds are admitted serially in seed order; a seed state's
       parent word packs its index into [seed_labels] (ref part 0). *)
    let roots = Buf.create () in
    List.iter
      (fun (label, key) ->
        let si = Vec.length seed_labels in
        if si >= 1 lsl 16 then invalid_arg "Mcheck: need max_seeds < 65536";
        Vec.push seed_labels label;
        match
          Table.admit table key 0 (Array.length key) ~parent:si ~max_states
        with
        | -2 -> truncated := true
        | -1 -> ()
        | r -> Buf.push roots r)
      (seeds ctx);
    Table.checkpoint table;
    let st = make_scratch ctx in
    let frontier = ref (Buf.contents roots) in
    let depth = ref 0 in
    Fun.protect
      ~finally:(fun () ->
        close_scratch st;
        Table.cleanup table)
      (fun () ->
        while Array.length !frontier > 0 && !violation = None do
          let level = !frontier in
          let width = Array.length level in
          if width > !frontier_peak then frontier_peak := width;
          depth_reached := !depth;
          let capped = !depth >= max_depth in
          let next = Buf.create () in
          let rw = jobs = 1 in

          (* One chunk [lo, hi) of the level: expansion pieces in
             parallel, serial miss fixup, shard-parallel admission. *)
          let process_chunk lo hi =
            let pieces =
              let w = hi - lo in
              let k = min jobs w in
              List.init k (fun i ->
                  (lo + (w * i / k), lo + (w * (i + 1) / k)))
            in
            (* Phase A: read-only against the visited table and the
               intern/memo tables.  Every candidate is pre-filtered
               against its owning shard (a duplicate from an earlier
               chunk costs one probe and no record); within-chunk
               duplicates are caught by the admission probe. *)
            let worker (plo, phi) =
              let ws = make_scratch ctx in
              let staging = Array.init nshards (fun _ -> Buf.create ()) in
              let stag_cnt = Array.make nshards 0 in
              let buckets = Array.init nshards (fun _ -> Buf.create ()) in
              let counts = Array.make nshards 0 in
              let misses = Buf.create () in
              let bad = ref (-1) in
              let witness = ref None in
              let tag = ref plo in
              while !bad < 0 && !tag < phi do
                let t = !tag in
                let r = level.(t) in
                let klen = Table.key_len table r in
                ensure_kbuf ws klen;
                Table.read table ws.readers r ws.kbuf;
                views_into ctx ws;
                if not (predicate ws.vbuf) then begin
                  bad := t;
                  witness := Some (Array.copy ws.vbuf)
                end
                else if not capped then begin
                  let missed = ref false in
                  let seq = ref 0 in
                  iter_successors ctx ~rw ~por ws klen
                    ~miss:(fun _ -> missed := true)
                    ~f:(fun il slen ->
                      let s = !seq in
                      incr seq;
                      if not !missed then begin
                        let h1, fp = hash2 ws.sbuf 0 slen in
                        let si = Table.route table h1 in
                        let sh = table.Table.shards.(si) in
                        if not (Table.mem_sh sh ~h1 ~fp ws.sbuf 0 slen) then begin
                          let b = staging.(si) in
                          Buf.push b t;
                          Buf.push b s;
                          Buf.push b il;
                          Buf.push b h1;
                          Buf.push b fp;
                          Buf.push b slen;
                          Buf.blit b ws.sbuf 0 slen;
                          stag_cnt.(si) <- stag_cnt.(si) + 1
                        end
                      end);
                  if !missed then begin
                    Array.iter Buf.clear staging;
                    Array.fill stag_cnt 0 nshards 0;
                    Buf.push misses t
                  end
                  else
                    for si = 0 to nshards - 1 do
                      let g = staging.(si) in
                      if g.Buf.len > 0 then begin
                        Buf.blit buckets.(si) g.Buf.data 0 g.Buf.len;
                        counts.(si) <- counts.(si) + stag_cnt.(si);
                        Buf.clear g;
                        stag_cnt.(si) <- 0
                      end
                    done
                end;
                tag := t + 1
              done;
              close_scratch ws;
              { r_bad = !bad;
                r_witness = !witness;
                r_misses = misses;
                r_buckets = buckets;
                r_counts = counts }
            in
            let results = Stdext.Pool.map ~jobs worker pieces in
            (* Pieces cover ascending tag ranges, so the first piece
               reporting a violation holds the globally first one. *)
            let vtag = ref max_int in
            List.iter
              (fun res ->
                if !vtag = max_int && res.r_bad >= 0 then begin
                  vtag := res.r_bad;
                  violation :=
                    Some (res.r_bad, level.(res.r_bad), Option.get res.r_witness)
                end)
              results;
            let vlimit = if !vtag = max_int then hi else !vtag in
            explored :=
              !explored + (vlimit - lo) + (if !vtag = max_int then 0 else 1);
            if capped && vlimit > lo then truncated := true;
            (* Serial miss fixup, in frontier order: recompute flagged
               parents read-write so intern ids and memos grow exactly
               as a fully serial sweep's would. *)
            let miss_buckets = Array.init nshards (fun _ -> Buf.create ()) in
            let miss_counts = Array.make nshards 0 in
            if not capped then
              List.iter
                (fun res ->
                  let m = res.r_misses in
                  for i = 0 to m.Buf.len - 1 do
                    let t = m.Buf.data.(i) in
                    if t < vlimit then begin
                      let r = level.(t) in
                      let klen = Table.key_len table r in
                      ensure_kbuf st klen;
                      Table.read table st.readers r st.kbuf;
                      let seq = ref 0 in
                      iter_successors ctx ~rw:true ~por st klen
                        ~miss:(fun _ -> assert false)
                        ~f:(fun il slen ->
                          let s = !seq in
                          incr seq;
                          let h1, fp = hash2 st.sbuf 0 slen in
                          let si = Table.route table h1 in
                          let sh = table.Table.shards.(si) in
                          if not (Table.mem_sh sh ~h1 ~fp st.sbuf 0 slen)
                          then begin
                            let b = miss_buckets.(si) in
                            Buf.push b t;
                            Buf.push b s;
                            Buf.push b il;
                            Buf.push b h1;
                            Buf.push b fp;
                            Buf.push b slen;
                            Buf.blit b st.sbuf 0 slen;
                            miss_counts.(si) <- miss_counts.(si) + 1
                          end)
                    end
                  done)
                results;
            (* Shard [si]'s candidate stream in (tag, seq) order:
               piece buckets concatenate to an ascending-tag stream
               (pieces are disjoint ascending ranges, emissions within
               a parent are in seq order), and the miss bucket merges
               in by tag (a parent is either clean or missed, never
               both). *)
            let merged_records si =
              let m = Buf.create () in
              let mb = miss_buckets.(si) in
              let mi = ref 0 in
              let copy_rec (b : Buf.t) i =
                let klen = b.Buf.data.(i + 5) in
                Buf.blit m b.Buf.data i (rec_words + klen);
                i + rec_words + klen
              in
              List.iter
                (fun res ->
                  let b = res.r_buckets.(si) in
                  let i = ref 0 in
                  while !i < b.Buf.len do
                    let t = b.Buf.data.(!i) in
                    if t >= vlimit then i := b.Buf.len
                    else begin
                      while
                        !mi < mb.Buf.len && mb.Buf.data.(!mi) < t
                      do
                        mi := copy_rec mb !mi
                      done;
                      i := copy_rec b !i
                    end
                  done)
                results;
              while !mi < mb.Buf.len do
                mi := copy_rec mb !mi
              done;
              m
            in
            let total_cand =
              List.fold_left
                (fun a res -> Array.fold_left ( + ) a res.r_counts)
                (Array.fold_left ( + ) 0 miss_counts)
                results
            in
            if Table.count table + total_cand <= max_states then begin
              (* Fast path: the bound cannot bite this chunk, so every
                 shard admits its own stream on its own domain with no
                 bound bookkeeping and no locks. *)
              let shard_admit si =
                let m = merged_records si in
                let sh = table.Table.shards.(si) in
                let out = Buf.create () in
                let i = ref 0 in
                while !i < m.Buf.len do
                  let d = m.Buf.data in
                  let t = d.(!i) in
                  let s = d.(!i + 1) in
                  let il = d.(!i + 2) in
                  let h1 = d.(!i + 3) in
                  let fp = d.(!i + 4) in
                  let klen = d.(!i + 5) in
                  let parent = ((level.(t) + 1) lsl 16) lor il in
                  (match
                     Table.find_or_add sh ~h1 ~fp d (!i + rec_words) klen
                       ~parent
                   with
                  | r when r >= 0 -> ()
                  | fresh ->
                    Buf.push out t;
                    Buf.push out s;
                    Buf.push out (Table.pack_ref ~shard:si ~local:(-fresh - 1)));
                  i := !i + rec_words + klen
                done;
                out
              in
              let outs =
                Array.of_list
                  (Stdext.Pool.map ~jobs shard_admit (List.init nshards Fun.id))
              in
              (* Serial k-way merge of the per-shard admissions back
                 into one (tag, seq)-ordered frontier. *)
              let cur = Array.make nshards 0 in
              let continue = ref true in
              while !continue do
                let best = ref (-1) in
                for si = 0 to nshards - 1 do
                  if cur.(si) < outs.(si).Buf.len then
                    if !best < 0 then best := si
                    else begin
                      let d = outs.(si).Buf.data and i = cur.(si) in
                      let e = outs.(!best).Buf.data and j = cur.(!best) in
                      if
                        d.(i) < e.(j)
                        || (d.(i) = e.(j) && d.(i + 1) < e.(j + 1))
                      then best := si
                    end
                done;
                match !best with
                | -1 -> continue := false
                | si ->
                  Buf.push next outs.(si).Buf.data.(cur.(si) + 2);
                  cur.(si) <- cur.(si) + 3
              done
            end
            else begin
              (* Near the visited bound: admit serially in global
                 (tag, seq) order, exactly the order a single-table
                 serial sweep admits in, so the hard bound keeps and
                 rejects the same states. *)
              let ms = Array.init nshards merged_records in
              let cur = Array.make nshards 0 in
              let continue = ref true in
              while !continue do
                let best = ref (-1) in
                for si = 0 to nshards - 1 do
                  if cur.(si) < ms.(si).Buf.len then
                    if !best < 0 then best := si
                    else begin
                      let d = ms.(si).Buf.data and i = cur.(si) in
                      let e = ms.(!best).Buf.data and j = cur.(!best) in
                      if
                        d.(i) < e.(j)
                        || (d.(i) = e.(j) && d.(i + 1) < e.(j + 1))
                      then best := si
                    end
                done;
                match !best with
                | -1 -> continue := false
                | si ->
                  let d = ms.(si).Buf.data and i = cur.(si) in
                  let t = d.(i) in
                  let il = d.(i + 2) in
                  let h1 = d.(i + 3) in
                  let fp = d.(i + 4) in
                  let klen = d.(i + 5) in
                  let sh = table.Table.shards.(si) in
                  if Table.count table >= max_states then begin
                    if not (Table.mem_sh sh ~h1 ~fp d (i + rec_words) klen)
                    then truncated := true
                  end
                  else begin
                    let parent = ((level.(t) + 1) lsl 16) lor il in
                    match
                      Table.find_or_add sh ~h1 ~fp d (i + rec_words) klen
                        ~parent
                    with
                    | r when r >= 0 -> ()
                    | fresh ->
                      Buf.push next
                        (Table.pack_ref ~shard:si ~local:(-fresh - 1))
                  end;
                  cur.(si) <- i + rec_words + klen
              done
            end;
            Table.checkpoint table
          in
          let c0 = ref 0 in
          while !c0 < width && !violation = None do
            let hi = min width (!c0 + chunk_states) in
            process_chunk !c0 hi;
            c0 := hi
          done;
          frontier := Buf.contents next;
          incr depth
        done;
        Table.note_peak table;
        let stats =
          { name;
            explored = !explored;
            visited = Table.count table;
            frontier_peak = !frontier_peak;
            depth_reached = !depth_reached;
            truncated = !truncated;
            peak_mem_words = table.Table.peak_words;
            spill_bytes = 8 * table.Table.spill_words }
        in
        match !violation with
        | None -> Ok stats
        | Some (_, r, witness) ->
          (* Parent-pointer walk: the only place a trace is
             materialized.  Only packed index words are read for the
             labels; the states along the path are re-read (possibly
             from spill) here, inside the protected section, while the
             table is still alive. *)
          let rec build acc refs r =
            let refs = r :: refs in
            let p = Table.parent_packed table r in
            let pr = (p lsr 16) - 1 in
            if pr < 0 then
              ( (match Vec.get seed_labels (p land 0xFFFF) with
                | L_root -> acc
                | l -> label_to_string l :: acc),
                refs )
            else
              build
                (label_to_string (decode_ilabel (p land 0xFFFF)) :: acc)
                refs pr
          in
          let trace, refs = build [] [] r in
          let path =
            List.map
              (fun r ->
                let klen = Table.key_len table r in
                ensure_kbuf st klen;
                Table.read table st.readers r st.kbuf;
                Array.init ctx.n (fun p -> Vec.get ctx.view_of st.kbuf.(p)))
              refs
          in
          Violation { trace; witness; path; stats })

  (* Materialized successor list, for replay: (label string, key). *)
  let successor_list ctx k =
    let st = make_scratch ctx in
    let klen = Array.length k in
    ensure_kbuf st klen;
    Array.blit k 0 st.kbuf 0 klen;
    let acc = ref [] in
    iter_successors ctx ~rw:true ~por:false st klen
      ~miss:(fun _ -> assert false)
      ~f:(fun il slen ->
        acc :=
          (label_to_string (decode_ilabel il), Array.sub st.sbuf 0 slen)
          :: !acc);
    List.rev !acc

  let views ctx (k : int array) =
    Array.init ctx.n (fun p -> Vec.get ctx.view_of k.(p))
end

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)

let default_spill_dir () = Filename.get_temp_dir_name ()

let explore ?wrapper (module P : Graybox.Protocol.S) ~n ~jobs ~shards
    ~max_depth ~max_states ~mem_budget ~spill_dir ~por ~name predicate =
  let module S = Search (P) in
  S.run ?wrapper ~n ~jobs ~shards ~max_depth ~max_states ~mem_budget ~spill_dir
    ~por ~name
    ~seeds:(fun ctx -> [ (L_root, S.initial ctx) ])
    predicate

let check_invariant ?wrapper proto ~n ?(jobs = 1) ?shards ?(max_depth = 30)
    ?(max_states = 200_000) ?(mem_budget = max_int) ?spill_dir ?(por = false)
    ~name p =
  let shards = match shards with Some s -> s | None -> min jobs 64 in
  let spill_dir =
    match spill_dir with Some d -> d | None -> default_spill_dir ()
  in
  explore ?wrapper proto ~n ~jobs ~shards ~max_depth ~max_states ~mem_budget
    ~spill_dir ~por ~name p

let me1 views =
  Array.fold_left
    (fun acc v -> if Graybox.View.eating v then acc + 1 else acc)
    0 views
  <= 1

let check_me1 ?wrapper proto ~n ?jobs ?shards ?max_depth ?max_states
    ?mem_budget ?spill_dir ?por () =
  check_invariant ?wrapper proto ~n ?jobs ?shards ?max_depth ?max_states
    ?mem_budget ?spill_dir ?por ~name:"ME1" me1

let check_everywhere ?wrapper ?inflight (module P : Graybox.Protocol.S) ~n
    ?(jobs = 1) ?shards ?(max_depth = 30) ?(max_states = 200_000)
    ?(mem_budget = max_int) ?spill_dir ?(por = false) ?(max_seeds = 256) ~name
    p =
  let shards = match shards with Some s -> s | None -> min jobs 64 in
  let spill_dir =
    match spill_dir with Some d -> d | None -> default_spill_dir ()
  in
  let module S = Search (P) in
  S.run ?wrapper ~n ~jobs ~shards ~max_depth ~max_states ~mem_budget ~spill_dir
    ~por ~name
    ~seeds:(S.everywhere_seeds ?inflight ~max_seeds)
    p

let check_me1_everywhere ?wrapper ?inflight proto ~n ?jobs ?shards ?max_depth
    ?max_states ?mem_budget ?spill_dir ?por ?max_seeds () =
  check_everywhere ?wrapper ?inflight proto ~n ?jobs ?shards ?max_depth
    ?max_states ?mem_budget ?spill_dir ?por ?max_seeds ~name:"ME1" me1

let replay ?wrapper (module P : Graybox.Protocol.S) ~n trace =
  let module S = Search (P) in
  let ctx = S.make_ctx ?wrapper ~n () in
  let rec go k = function
    | [] -> Some (S.views ctx k)
    | l :: tl -> (
      match
        List.find_opt (fun (l', _) -> l' = l) (S.successor_list ctx k)
      with
      | Some (_, k') -> go k' tl
      | None -> None)
  in
  go (S.initial ctx) trace

(* ------------------------------------------------------------------ *)
(* The synthesis oracle                                                *)

module Oracle = struct
  type obligation = Safety | Recovery of int | Progress

  type cex = {
    obligation : obligation;
    seed : string;
    trace : string list;
    path : Graybox.View.t array list;
    fired : (int * Graybox.View.t) list;
    stats : stats list;
  }

  type verdict = Safe of stats list | Cex of cex

  let obligation_label = function
    | Safety -> "safety"
    | Recovery p -> Printf.sprintf "recovery(%d)" p
    | Progress -> "progress"

  (* The last [length path - 1] labels of [trace] are actions (the
     rest is the seed tag); action [j] maps [path.(j)] to
     [path.(j+1)], so a wrap(p) there fired from p's view in
     [path.(j)]. *)
  let firings ~trace ~path =
    let n_actions = List.length path - 1 in
    let actions =
      let rec drop k l = if k <= 0 then l else drop (k - 1) (List.tl l) in
      drop (List.length trace - n_actions) trace
    in
    List.concat
      (List.mapi
         (fun j l ->
           match Scanf.sscanf_opt l "wrap(%d)" (fun p -> p) with
           | Some p -> [ (p, (List.nth path j : Graybox.View.t array).(p)) ]
           | None -> [])
         actions)

  let seed_of ~trace ~path =
    if List.length trace = List.length path then List.hd trace else "init"

  let check (module P : Graybox.Protocol.S) ~n ?(jobs = 1) ?shards
      ?(safety_depth = 8) ?(recovery_depth = 14) ?(max_states = 200_000)
      ?(mem_budget = max_int) ?spill_dir ?(max_seeds = 256) wrapper =
    let shards = match shards with Some s -> s | None -> min jobs 64 in
    let spill_dir =
      match spill_dir with Some d -> d | None -> default_spill_dir ()
    in
    let module S = Search (P) in
    (* Safety leg: everywhere-mode ME1 of the wrapped system over the
       state-corruption closure.  In-flight-message seeds are excluded
       on purpose: a forged reply delivered in one step defeats any
       view-reading wrapper at this abstraction (wrappers correct
       state, not channels) — message faults are covered statistically
       by the chaos campaign's wrapped-recover gates. *)
    let safety =
      S.run ~wrapper ~n ~jobs ~shards ~max_depth:safety_depth ~max_states
        ~mem_budget ~spill_dir ~por:false ~name:"ME1"
        ~seeds:(S.everywhere_seeds ~inflight:false ~max_seeds)
        me1
    in
    match safety with
    | Violation { trace; path; stats; _ } ->
      Cex
        { obligation = Safety;
          seed = seed_of ~trace ~path;
          trace;
          path;
          fired = firings ~trace ~path;
          stats = [ stats ] }
    | Ok s ->
      (* Recovery legs: a plain reachability check suffices — the
         all-lost wedge has no enabled transition at all without a
         wrapper, so any path back to the CS goes through the
         candidate.  Two obligation shapes keep the search shallow:
         from each singleton wedge(p), process p itself must re-enter
         (a few steps: the candidate resends, idle peers reply); from
         wedge(all), it is enough that {e some} process re-enters —
         the deadlock is broken, and once requests are known the
         protocol's own priority order drains the queue.  (Demanding
         that the {e lowest}-priority process eats from wedge(all)
         would push the frontier through every full CS rotation —
         exponentially deep for no extra discrimination: the guard
         language cannot name process ids, so candidates are
         pid-symmetric.) *)
      let wedge_views seed_idx =
        let ctx = S.make_ctx ~wrapper ~n () in
        let label, key = List.nth (S.wedge_seeds ctx) seed_idx in
        let tag = match label with L_seed s -> s | _ -> "init" in
        (tag, S.views ctx key)
      in
      let legs =
        (0, Progress)
        :: List.init n (fun p -> (p + 1, Recovery p))
      in
      let rec sweep acc = function
        | [] -> Safe (List.rev acc)
        | (seed_idx, obligation) :: rest -> (
          let stuck views =
            match obligation with
            | Recovery p -> not (Graybox.View.eating views.(p))
            | Progress | Safety ->
              not (Array.exists Graybox.View.eating views)
          in
          let r =
            S.run ~wrapper ~n ~jobs ~shards ~max_depth:recovery_depth
              ~max_states ~mem_budget ~spill_dir ~por:false
              ~name:(obligation_label obligation)
              ~seeds:(fun ctx -> [ List.nth (S.wedge_seeds ctx) seed_idx ])
              stuck
          in
          match r with
          | Violation { stats; _ } -> sweep (stats :: acc) rest
          | Ok s_run ->
            let tag, views = wedge_views seed_idx in
            Cex
              { obligation;
                seed = tag;
                trace = [];
                path = [ views ];
                fired = [];
                stats = List.rev (s_run :: acc) })
      in
      sweep [ s ] legs
end
