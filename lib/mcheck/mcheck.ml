(* High-throughput explicit-state checker over Protocol.S.

   Three design decisions carry the throughput (see mcheck.mli for the
   user-facing contract):

   - process states and messages are hash-consed into small integer
     ids, and a global state is a flat int array: the interned id of
     every process, then every channel as a length-prefixed run of
     interned message ids.  Dedup hashing is an FNV fold over that
     array, equality is an int compare against an arena slice, and
     successor keys are spliced directly out of the parent's array
     into reusable scratch buffers — the steady-state hot path
     allocates nothing per successor and never deep-traverses (let
     alone marshals) a process state.  Deep hashing happens once per
     *distinct* process state or message, at intern time.

   - transitions are memoized on ids: delivering message [m] to
     process state [s] always yields the same successor, so after the
     first occurrence the checker replays it as an int-keyed lookup,
     never re-running the protocol.  Per-process views are cached at
     intern time, so predicate checks are pointer reads.

   - the BFS is level-synchronous with parent-pointer traces.  With
     [jobs = 1] each level runs as a single serial sweep.  With
     [jobs > 1] each level's predicate checks and successor
     expansions fan out over a domain pool (strictly read-only
     against the visited table and the intern/memo tables), and a
     serial merge phase inserts results in frontier order; memo
     misses are recomputed serially there.  Results — including
     stats — are identical for every ~jobs value because admissions
     always happen serially in frontier order.  Per-state memory is
     O(1): queue entries carry a compact (parent, label) pair, and
     the counterexample path is rebuilt only on violation. *)

module Vec = Stdext.Vec

type stats = {
  name : string;
  explored : int;
  visited : int;
  frontier_peak : int;
  depth_reached : int;
  truncated : bool;
}

type 'v result =
  | Ok of stats
  | Violation of { trace : string list; witness : 'v; stats : stats }

(* Compact action labels; rendered to strings only when a trace is
   reconstructed, so the hot path never sprintf-allocates. *)
type label =
  | L_root
  | L_seed of string
  | L_request of int
  | L_enter of int
  | L_release of int
  | L_deliver of int * int

let label_to_string = function
  | L_root -> "init"
  | L_seed tag -> tag
  | L_request p -> Printf.sprintf "request(%d)" p
  | L_enter p -> Printf.sprintf "enter(%d)" p
  | L_release p -> Printf.sprintf "release(%d)" p
  | L_deliver (src, dst) -> Printf.sprintf "deliver(%d->%d)" src dst

(* Hot-path label encoding: client and delivery labels fit a packed
   int (kind in bits 12+, operands in two 6-bit fields), so
   enumerating a successor allocates nothing; the variant is
   materialized only for states actually admitted.  Seed labels
   (L_root / L_seed) never flow through the hot path. *)
let il_request p = (1 lsl 12) lor p
let il_enter p = (2 lsl 12) lor p
let il_release p = (3 lsl 12) lor p
let il_deliver src dst = (4 lsl 12) lor (src lsl 6) lor dst

let decode_ilabel il =
  let a = (il lsr 6) land 63 and b = il land 63 in
  match il lsr 12 with
  | 1 -> L_request b
  | 2 -> L_enter b
  | 3 -> L_release b
  | _ -> L_deliver (a, b)

(* ------------------------------------------------------------------ *)
(* The visited set: an open-addressing hash table over int-array keys
   stored back-to-back in a growable int arena.  Slots interleave
   (id + 1, hash) pairs so a probe costs one cache line before the
   arena compare.  One probe sequence answers "seen before?" and
   inserts in the same pass ([find_or_add]); [mem] is read-only and
   safe to call from several domains while no insert is in flight.
   Ids are assigned in insertion order. *)

module Keyset = struct
  type t = {
    mutable slots : int array;  (* 2i: state id + 1 (0 = empty); 2i+1: hash *)
    mutable mask : int;  (* slot-pair count - 1, a power of 2 *)
    mutable count : int;
    mutable arena : int array;  (* concatenated keys *)
    mutable arena_len : int;
    offs : int Vec.t;  (* id -> offset of its key in [arena] *)
    lens : int Vec.t;  (* id -> key length *)
  }

  let create () =
    { slots = Array.make (2 * 8192) 0;
      mask = 8191;
      count = 0;
      arena = Array.make 65536 0;
      arena_len = 0;
      offs = Vec.create ();
      lens = Vec.create () }

  let count t = t.count
  let len t id = Vec.get t.lens id

  let read t id (buf : int array) =
    Array.blit t.arena (Vec.get t.offs id) buf 0 (Vec.get t.lens id)

  let hash_key (k : int array) klen =
    let h = ref 0x811c9dc5 in
    for i = 0 to klen - 1 do
      h := (!h * 0x01000193) lxor k.(i)
    done;
    !h land max_int

  let key_equal t id (k : int array) klen =
    Vec.get t.lens id = klen
    &&
    let off = Vec.get t.offs id in
    let arena = t.arena in
    let rec eq i = i = klen || (arena.(off + i) = k.(i) && eq (i + 1)) in
    eq 0

  let mem t k klen =
    let h = hash_key k klen in
    let rec probe i =
      match t.slots.(2 * i) with
      | 0 -> false
      | s ->
        (t.slots.((2 * i) + 1) = h && key_equal t (s - 1) k klen)
        || probe ((i + 1) land t.mask)
    in
    probe (h land t.mask)

  let grow_slots t =
    let pairs = (t.mask + 1) * 2 in
    let slots = Array.make (2 * pairs) 0 in
    let mask = pairs - 1 in
    for i = 0 to t.mask do
      match t.slots.(2 * i) with
      | 0 -> ()
      | s ->
        let h = t.slots.((2 * i) + 1) in
        let rec place j =
          if slots.(2 * j) = 0 then begin
            slots.(2 * j) <- s;
            slots.((2 * j) + 1) <- h
          end
          else place ((j + 1) land mask)
        in
        place (h land mask)
    done;
    t.slots <- slots;
    t.mask <- mask

  let append_arena t (k : int array) klen =
    if t.arena_len + klen > Array.length t.arena then begin
      let arena =
        Array.make (max (Array.length t.arena * 2) (t.arena_len + klen)) 0
      in
      Array.blit t.arena 0 arena 0 t.arena_len;
      t.arena <- arena
    end;
    Array.blit k 0 t.arena t.arena_len klen;
    t.arena_len <- t.arena_len + klen

  (* [Some id] if the key was already present; [None] after inserting
     it with the next id ([count t - 1] afterwards).  Only the first
     [klen] elements of [k] are read, so a scratch buffer works. *)
  let find_or_add t k klen =
    if 2 * (t.count + 1) > t.mask then grow_slots t;
    let h = hash_key k klen in
    let rec probe i =
      match t.slots.(2 * i) with
      | 0 ->
        t.slots.(2 * i) <- t.count + 1;
        t.slots.((2 * i) + 1) <- h;
        t.count <- t.count + 1;
        Vec.push t.offs t.arena_len;
        Vec.push t.lens klen;
        append_arena t k klen;
        None
      | s ->
        if t.slots.((2 * i) + 1) = h && key_equal t (s - 1) k klen then
          Some (s - 1)
        else probe ((i + 1) land t.mask)
    in
    probe (h land t.mask)
end

module Search (P : Graybox.Protocol.S) = struct
  (* Deep-traversal parameters so states holding maps and sets hash on
     their full contents, not just the first ten nodes; paid once per
     distinct process state. *)
  module StateH = Hashtbl.Make (struct
    type t = P.state

    let equal (a : P.state) b = a = b
    let hash s = Hashtbl.hash_param 64 256 s
  end)

  module MsgH = Hashtbl.Make (struct
    type t = Graybox.Msg.t

    let equal (a : Graybox.Msg.t) b = a = b
    let hash m = Hashtbl.hash_param 64 256 m
  end)

  (* A memoized transition: successor process id plus sends as
     (dst, msg id) pairs. *)
  type memo = (int * (int * int) list) option ref

  (* Interners and transition memos.  All writes happen in the serial
     phases (seeding, serial sweep, merge, replay); parallel expansion
     only reads. *)
  type ctx = {
    n : int;
    proc_id : int StateH.t;
    proc_of : P.state Vec.t;
    view_of : Graybox.View.t Vec.t;  (* cached per interned process *)
    msg_id : int MsgH.t;
    msg_of : Graybox.Msg.t Vec.t;
    (* client-action memos, dense by process id; [m_enter]'s inner
       option is [try_enter]'s own: [Some None] = computed, disabled *)
    m_request : memo Vec.t;
    m_enter : (int * (int * int) list) option option ref Vec.t;
    m_release : memo Vec.t;
    (* delivery memo: open-addressing map from the packed int of
       [deliver_key] to an index into [d_res]; slots interleave
       (key + 1, index) so a hit costs one probe and zero allocation *)
    mutable d_slots : int array;
    mutable d_mask : int;
    mutable d_count : int;
    d_res : (int * (int * int) list) Vec.t;
  }

  let make_ctx ~n =
    if n < 1 || n > 64 then invalid_arg "Mcheck: need 1 <= n <= 64";
    { n;
      proc_id = StateH.create 1024;
      proc_of = Vec.create ();
      view_of = Vec.create ();
      msg_id = MsgH.create 256;
      msg_of = Vec.create ();
      m_request = Vec.create ();
      m_enter = Vec.create ();
      m_release = Vec.create ();
      d_slots = Array.make (2 * 4096) 0;
      d_mask = 4095;
      d_count = 0;
      d_res = Vec.create () }

  let intern_proc ctx s =
    match StateH.find_opt ctx.proc_id s with
    | Some id -> id
    | None ->
      let id = Vec.length ctx.proc_of in
      Vec.push ctx.proc_of s;
      Vec.push ctx.view_of (P.view s);
      Vec.push ctx.m_request (ref None);
      Vec.push ctx.m_enter (ref None);
      Vec.push ctx.m_release (ref None);
      StateH.add ctx.proc_id s id;
      id

  let intern_msg ctx m =
    match MsgH.find_opt ctx.msg_id m with
    | Some id -> id
    | None ->
      let id = Vec.length ctx.msg_of in
      if id >= 1 lsl 20 then
        failwith "Mcheck: more than 2^20 distinct messages";
      Vec.push ctx.msg_of m;
      MsgH.add ctx.msg_id m id;
      id

  (* Injective packing: mid < 2^20 (guarded in intern_msg), src < 64
     (guarded in make_ctx), pid below 2^37 (beyond any intern count
     reachable under the visited-set bound). *)
  let deliver_key pid ~src mid = (pid lsl 26) lor (mid lsl 6) lor src

  (* Fibonacci scramble; take bits from the middle, the low bits of a
     multiplicative hash are weak. *)
  let dhash dk = (dk * 0x9e3779b97f4a7c1) lsr 20

  (* -1 if absent, else the index into [d_res].  Read-only: safe from
     several domains while no [deliver_add] is in flight. *)
  let deliver_find ctx dk =
    let mask = ctx.d_mask in
    let slots = ctx.d_slots in
    let rec probe i =
      let k = slots.(2 * i) in
      if k = 0 then -1
      else if k = dk + 1 then slots.((2 * i) + 1)
      else probe ((i + 1) land mask)
    in
    probe (dhash dk land mask)

  let deliver_add ctx dk r =
    if 2 * (ctx.d_count + 1) > ctx.d_mask then begin
      let pairs = (ctx.d_mask + 1) * 2 in
      let slots = Array.make (2 * pairs) 0 in
      let mask = pairs - 1 in
      for i = 0 to ctx.d_mask do
        let k = ctx.d_slots.(2 * i) in
        if k <> 0 then begin
          let rec place j =
            if slots.(2 * j) = 0 then begin
              slots.(2 * j) <- k;
              slots.((2 * j) + 1) <- ctx.d_slots.((2 * i) + 1)
            end
            else place ((j + 1) land mask)
          in
          place (dhash (k - 1) land mask)
        end
      done;
      ctx.d_slots <- slots;
      ctx.d_mask <- mask
    end;
    let idx = Vec.length ctx.d_res in
    Vec.push ctx.d_res r;
    let mask = ctx.d_mask in
    let rec place j =
      if ctx.d_slots.(2 * j) = 0 then begin
        ctx.d_slots.(2 * j) <- dk + 1;
        ctx.d_slots.((2 * j) + 1) <- idx
      end
      else place ((j + 1) land mask)
    in
    place (dhash dk land mask);
    ctx.d_count <- ctx.d_count + 1

  let intern_sends ctx sends =
    List.map (fun (dst, m) -> (dst, intern_msg ctx m)) sends

  let initial ctx =
    let n = ctx.n in
    let k = Array.make (n + (n * n)) 0 in
    for p = 0 to n - 1 do
      k.(p) <- intern_proc ctx (P.init ~n p)
    done;
    k

  (* Reusable per-sweep buffers: parent key, successor key, views,
     channel offsets.  A scratch belongs to exactly one sequential
     sweep (the serial BFS, one parallel chunk, a replay). *)
  type scratch = {
    mutable kbuf : int array;
    mutable sbuf : int array;
    vbuf : Graybox.View.t array;
    offs : int array;
  }

  let make_scratch ctx =
    { kbuf = Array.make 256 0;
      sbuf = Array.make 256 0;
      vbuf = Array.make ctx.n (Vec.get ctx.view_of 0);
      offs = Array.make (ctx.n * ctx.n) 0 }

  let ensure_kbuf st l =
    if Array.length st.kbuf < l then
      st.kbuf <- Array.make (max l (2 * Array.length st.kbuf)) 0

  let ensure_sbuf st l =
    if Array.length st.sbuf < l then
      st.sbuf <- Array.make (max l (2 * Array.length st.sbuf)) 0

  (* The views of the state in [st.kbuf], into [st.vbuf].  The array
     is reused across states; predicates must not retain it. *)
  let views_into ctx st =
    for p = 0 to ctx.n - 1 do
      st.vbuf.(p) <- Vec.get ctx.view_of st.kbuf.(p)
    done

  let fill_offsets ctx st =
    let n = ctx.n in
    let off = ref n in
    for ci = 0 to (n * n) - 1 do
      st.offs.(ci) <- !off;
      off := !off + 1 + st.kbuf.(!off)
    done

  (* ---------------- successor key splicing ---------------- *)

  let rec count_adds src n ci = function
    | [] -> 0
    | (dst, _) :: tl ->
      (if (src * n) + dst = ci then 1 else 0) + count_adds src n ci tl

  let rec put_adds (s : int array) pos src n ci = function
    | [] -> pos
    | (dst, mid) :: tl ->
      if (src * n) + dst = ci then begin
        s.(pos) <- mid;
        put_adds s (pos + 1) src n ci tl
      end
      else put_adds s pos src n ci tl

  (* Write into [st.sbuf] the successor key for: process [p] stepping
     to [pid'], optionally consuming the front message of channel
     [pop] (-1 for none), sending [sends'] from [src].  Returns the
     successor key length.  Channel contents move by int blits only. *)
  let splice ctx st klen ~p ~pid' ~pop ~src ~sends' =
    let n = ctx.n in
    let k = st.kbuf in
    match (sends', pop) with
    | [], -1 ->
      ensure_sbuf st klen;
      Array.blit k 0 st.sbuf 0 klen;
      st.sbuf.(p) <- pid';
      klen
    | _ ->
      let slen =
        klen + List.length sends' - (if pop >= 0 then 1 else 0)
      in
      ensure_sbuf st slen;
      let s = st.sbuf in
      Array.blit k 0 s 0 n;
      s.(p) <- pid';
      let pos = ref n in
      for ci = 0 to (n * n) - 1 do
        let off = st.offs.(ci) in
        let len = k.(off) in
        let drop = if ci = pop then 1 else 0 in
        s.(!pos) <- len - drop + count_adds src n ci sends';
        incr pos;
        for j = drop to len - 1 do
          s.(!pos) <- k.(off + 1 + j);
          incr pos
        done;
        pos := put_adds s !pos src n ci sends'
      done;
      slen

  (* Serial transition computation: decode, run the protocol, intern
     and memoize.  Must not race with parallel expansion. *)
  let compute_client ctx pid cell step =
    match !cell with
    | Some r -> r
    | None ->
      let s', sends = step (Vec.get ctx.proc_of pid) in
      let r = (intern_proc ctx s', intern_sends ctx sends) in
      cell := Some r;
      r

  let compute_enter ctx pid cell =
    match !cell with
    | Some r -> r
    | None ->
      let r =
        match P.try_enter (Vec.get ctx.proc_of pid) with
        | None -> None
        | Some (s', sends) ->
          Some (intern_proc ctx s', intern_sends ctx sends)
      in
      cell := Some r;
      r

  let compute_deliver ctx pid ~src mid =
    let dk = deliver_key pid ~src mid in
    let idx = deliver_find ctx dk in
    if idx >= 0 then Vec.get ctx.d_res idx
    else begin
      let s', sends =
        P.on_message ~from:src (Vec.get ctx.msg_of mid)
          (Vec.get ctx.proc_of pid)
      in
      let r = (intern_proc ctx s', intern_sends ctx sends) in
      deliver_add ctx dk r;
      r
    end

  (* The maximally nondeterministic client (request / enter / release
     whenever the view allows) interleaved with every FIFO delivery.
     Iterates the successors of the state in [st.kbuf] (length
     [klen]), calling [f label slen] with each successor key in
     [st.sbuf] — valid only during [f] — in a fixed order (client
     actions by process, then deliveries by channel), so every sweep
     enumerates identically.

     [rw = true]: serial context — memo misses run the protocol and
     cache the result; [miss] is never called.
     [rw = false]: parallel context — the ctx is read-only and a memo
     miss invokes [miss label] instead; the serial merge recomputes
     that parent via the [rw = true] path.  Both paths build keys
     with [splice], so the results are identical. *)
  let iter_successors ctx ~rw st klen ~miss ~f =
    let n = ctx.n in
    fill_offsets ctx st;
    let emit il p pop src (pid', sends') =
      f il (splice ctx st klen ~p ~pid' ~pop ~src ~sends')
    in
    for p = 0 to n - 1 do
      let pid = st.kbuf.(p) in
      let v = Vec.get ctx.view_of pid in
      if Graybox.View.thinking v then begin
        let cell = Vec.get ctx.m_request pid in
        if rw then emit (il_request p) p (-1) p (compute_client ctx pid cell P.request_cs)
        else
          match !cell with
          | Some r -> emit (il_request p) p (-1) p r
          | None -> miss (il_request p)
      end;
      if Graybox.View.hungry v then begin
        let cell = Vec.get ctx.m_enter pid in
        if rw then (
          match compute_enter ctx pid cell with
          | None -> ()  (* entry not enabled *)
          | Some r -> emit (il_enter p) p (-1) p r)
        else
          match !cell with
          | Some None -> ()  (* computed: entry not enabled *)
          | Some (Some r) -> emit (il_enter p) p (-1) p r
          | None -> miss (il_enter p)
      end;
      if Graybox.View.eating v then begin
        let cell = Vec.get ctx.m_release pid in
        if rw then emit (il_release p) p (-1) p (compute_client ctx pid cell P.release_cs)
        else
          match !cell with
          | Some r -> emit (il_release p) p (-1) p r
          | None -> miss (il_release p)
      end
    done;
    for src = 0 to n - 1 do
      for dst = 0 to n - 1 do
        let ci = (src * n) + dst in
        let off = st.offs.(ci) in
        if st.kbuf.(off) > 0 then begin
          let mid = st.kbuf.(off + 1) in
          let pid = st.kbuf.(dst) in
          if rw then
            emit (il_deliver src dst) dst ci dst (compute_deliver ctx pid ~src mid)
          else begin
            let idx = deliver_find ctx (deliver_key pid ~src mid) in
            if idx >= 0 then
              emit (il_deliver src dst) dst ci dst (Vec.get ctx.d_res idx)
            else miss (il_deliver src dst)
          end
        end
      done
    done

  (* ---------------- everywhere-mode seeding ---------------- *)

  (* Arbitrary in-flight messages: every kind, stamped low so they look
     like plausible leftovers rather than clock corruption (which would
     defeat any timestamp-ordered protocol, correct or not). *)
  let inflight_msgs src =
    let ts c = Clocks.Timestamp.make ~clock:c ~pid:src in
    [ Graybox.Msg.Request (ts 1);
      Graybox.Msg.Reply (ts 1);
      Graybox.Msg.Release (ts 1);
      Graybox.Msg.Request (ts 7) ]

  let rec take k = function
    | [] -> []
    | _ when k <= 0 -> []
    | x :: tl -> x :: take (k - 1) tl

  let everywhere_seeds ~max_seeds ctx =
    let n = ctx.n in
    let base = initial ctx in
    let corrupted =
      List.concat_map
        (fun p ->
          List.mapi
            (fun i s' ->
              let k = Array.copy base in
              k.(p) <- intern_proc ctx s';
              (L_seed (Printf.sprintf "corrupt(%d#%d)" p i), k))
            (P.perturb ~n (Vec.get ctx.proc_of base.(p))))
        (List.init n Fun.id)
    in
    (* [base]'s channels are all empty, so channel [ci]'s length slot
       sits at [n + ci]: insert one message by splitting there. *)
    let inflight =
      List.concat_map
        (fun src ->
          List.concat_map
            (fun dst ->
              if src = dst then []
              else
                List.map
                  (fun m ->
                    let ci = (src * n) + dst in
                    let k = Array.make (Array.length base + 1) 0 in
                    Array.blit base 0 k 0 (n + ci);
                    k.(n + ci) <- 1;
                    k.(n + ci + 1) <- intern_msg ctx m;
                    Array.blit base (n + ci + 1) k (n + ci + 2)
                      (Array.length base - (n + ci + 1));
                    ( L_seed
                        (Printf.sprintf "inflight(%d->%d,%s)" src dst
                           (Graybox.Msg.to_string m)),
                      k ))
                  (inflight_msgs src))
            (List.init n Fun.id))
        (List.init n Fun.id)
    in
    (L_root, base) :: take max_seeds (corrupted @ inflight)

  (* ---------------- the level-synchronous BFS ---------------- *)

  (* Packed-int labels (see [decode_ilabel]). *)
  type succ =
    | S_new of int * int array
        (* memo-built key, not visited at expansion time *)
    | S_miss of int  (* transition not memoized yet *)

  type expansion =
    | E_violation of Graybox.View.t array
    | E_depth_capped
    | E_succs of succ list

  let chunk size xs =
    let rec split i acc = function
      | tl when i = size -> (List.rev acc, tl)
      | [] -> (List.rev acc, [])
      | x :: tl -> split (i + 1) (x :: acc) tl
    in
    let rec go = function
      | [] -> []
      | xs ->
        let c, rest = split 0 [] xs in
        c :: go rest
    in
    go xs

  let run ~n ~jobs ~max_depth ~max_states ~name ~seeds predicate =
    if jobs < 1 then invalid_arg "Mcheck: need jobs >= 1";
    if max_states < 1 then invalid_arg "Mcheck: need max_states >= 1";
    let ctx = make_ctx ~n in
    let table = Keyset.create () in
    let parents : (int * label) Vec.t = Vec.create () in
    let truncated = ref false in
    (* max_states is a hard bound on the visited set: once reached, no
       new state is admitted (already-admitted ones are still checked
       and expanded, so the bound never abandons admitted work). *)
    let admit key klen ~parent ~label =
      if Keyset.count table >= max_states then begin
        if not (Keyset.mem table key klen) then truncated := true;
        None
      end
      else
        match Keyset.find_or_add table key klen with
        | Some _ -> None
        | None ->
          Vec.push parents (parent, label);
          Some (Keyset.count table - 1)
    in
    (* Same, for the hot path: the label variant is built only when
       the probe admits the state. *)
    let admit_il key klen ~parent ~il =
      if Keyset.count table >= max_states then begin
        if not (Keyset.mem table key klen) then truncated := true;
        None
      end
      else
        match Keyset.find_or_add table key klen with
        | Some _ -> None
        | None ->
          Vec.push parents (parent, decode_ilabel il);
          Some (Keyset.count table - 1)
    in
    let roots =
      List.filter_map
        (fun (label, key) ->
          admit key (Array.length key) ~parent:(-1) ~label)
        (seeds ctx)
    in
    let st = make_scratch ctx in
    let explored = ref 0 in
    let frontier_peak = ref 0 in
    let depth_reached = ref 0 in
    let violation = ref None in
    let frontier = ref roots in
    let depth = ref 0 in
    let next = ref [] in
    (* Load the state [id] into [st.kbuf] (returning its length) and
       its views into [st.vbuf]. *)
    let load id =
      let klen = Keyset.len table id in
      ensure_kbuf st klen;
      Keyset.read table id st.kbuf;
      views_into ctx st;
      klen
    in
    (* Expand the non-violating state [id] (already loaded, length
       [klen]) serially, admitting fresh successors in order. *)
    let expand_serial id klen d =
      if d >= max_depth then truncated := true
      else
        iter_successors ctx ~rw:true st klen
          ~miss:(fun _ -> assert false)
          ~f:(fun il slen ->
            match admit_il st.sbuf slen ~parent:id ~il with
            | Some id' -> next := id' :: !next
            | None -> ())
    in
    while !frontier <> [] && !violation = None do
      let level = !frontier in
      let width = List.length level in
      if width > !frontier_peak then frontier_peak := width;
      depth_reached := !depth;
      let d = !depth in
      next := [];
      if jobs = 1 then begin
        (* Serial sweep: predicate, then expand, state by state in
           frontier order; stops at the first violation. *)
        let rec sweep idx = function
          | [] -> ()
          | id :: rest ->
            let klen = load id in
            if not (predicate st.vbuf) then begin
              explored := !explored + idx + 1;
              violation := Some (id, Array.copy st.vbuf)
            end
            else begin
              expand_serial id klen d;
              if rest = [] then explored := !explored + width
              else sweep (idx + 1) rest
            end
        in
        sweep 0 level
      end
      else begin
        (* Parallel expansion: read-only against the visited table and
           the intern/memo tables.  A [Keyset.mem] pre-filter drops
           successors already visited in previous levels, shrinking
           the serial merge; within-level duplicates are caught by the
           merge's own probe, so results do not depend on it. *)
        let expand_chunk ids =
          let st = make_scratch ctx in
          List.map
            (fun id ->
              let klen = Keyset.len table id in
              ensure_kbuf st klen;
              Keyset.read table id st.kbuf;
              views_into ctx st;
              if not (predicate st.vbuf) then E_violation (Array.copy st.vbuf)
              else if d >= max_depth then E_depth_capped
              else begin
                let succs = ref [] in
                iter_successors ctx ~rw:false st klen
                  ~miss:(fun il -> succs := S_miss il :: !succs)
                  ~f:(fun il slen ->
                    if not (Keyset.mem table st.sbuf slen) then
                      succs :=
                        S_new (il, Array.sub st.sbuf 0 slen) :: !succs);
                E_succs (List.rev !succs)
              end)
            ids
        in
        let results =
          List.concat
            (Stdext.Pool.map ~jobs expand_chunk
               (chunk (max 1 ((width + (4 * jobs) - 1) / (4 * jobs))) level))
        in
        (* Merge serially in frontier order.  [merge_one] commits one
           non-violating state's successors; a parent with a memo miss
           is recomputed serially so the next occurrence anywhere is a
           memo hit. *)
        let merge_one id r =
          match r with
          | E_violation _ -> assert false
          | E_depth_capped -> truncated := true
          | E_succs succs ->
            if
              List.exists
                (function S_miss _ -> true | S_new _ -> false)
                succs
            then begin
              let klen = load id in
              expand_serial id klen d
            end
            else
              List.iter
                (function
                  | S_miss _ -> assert false
                  | S_new (il, key) -> (
                    match
                      admit_il key (Array.length key) ~parent:id ~il
                    with
                    | Some id' -> next := id' :: !next
                    | None -> ()))
                succs
        in
        (* First violation in frontier order wins; the states before
           it still commit their successors, exactly as the serial
           sweep would have, so stats match for every ~jobs. *)
        let rec merge idx ids rs =
          match (ids, rs) with
          | [], [] -> ()
          | id :: _, E_violation vs :: _ ->
            explored := !explored + idx + 1;
            violation := Some (id, vs)
          | id :: ids, r :: rs ->
            merge_one id r;
            if ids = [] then explored := !explored + width
            else merge (idx + 1) ids rs
          | _ -> assert false
        in
        merge 0 level results
      end;
      frontier := List.rev !next;
      incr depth
    done;
    let stats =
      { name;
        explored = !explored;
        visited = Keyset.count table;
        frontier_peak = !frontier_peak;
        depth_reached = !depth_reached;
        truncated = !truncated }
    in
    match !violation with
    | None -> Ok stats
    | Some (id, witness) ->
      (* Parent-pointer walk: the only place a trace is materialized. *)
      let rec build acc id =
        let parent, label = Vec.get parents id in
        let acc =
          match label with L_root -> acc | l -> label_to_string l :: acc
        in
        if parent < 0 then acc else build acc parent
      in
      Violation { trace = build [] id; witness; stats }

  (* Materialized successor list, for replay: (label string, key). *)
  let successor_list ctx k =
    let st = make_scratch ctx in
    let klen = Array.length k in
    ensure_kbuf st klen;
    Array.blit k 0 st.kbuf 0 klen;
    let acc = ref [] in
    iter_successors ctx ~rw:true st klen
      ~miss:(fun _ -> assert false)
      ~f:(fun il slen ->
        acc :=
          (label_to_string (decode_ilabel il), Array.sub st.sbuf 0 slen)
          :: !acc);
    List.rev !acc

  let views ctx (k : int array) =
    Array.init ctx.n (fun p -> Vec.get ctx.view_of k.(p))
end

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)

let explore (module P : Graybox.Protocol.S) ~n ~jobs ~max_depth ~max_states
    ~name predicate =
  let module S = Search (P) in
  S.run ~n ~jobs ~max_depth ~max_states ~name
    ~seeds:(fun ctx -> [ (L_root, S.initial ctx) ])
    predicate

let check_invariant proto ~n ?(jobs = 1) ?(max_depth = 30)
    ?(max_states = 200_000) ~name p =
  explore proto ~n ~jobs ~max_depth ~max_states ~name p

let me1 views =
  Array.fold_left
    (fun acc v -> if Graybox.View.eating v then acc + 1 else acc)
    0 views
  <= 1

let check_me1 proto ~n ?jobs ?max_depth ?max_states () =
  check_invariant proto ~n ?jobs ?max_depth ?max_states ~name:"ME1" me1

let check_everywhere (module P : Graybox.Protocol.S) ~n ?(jobs = 1)
    ?(max_depth = 30) ?(max_states = 200_000) ?(max_seeds = 256) ~name p =
  let module S = Search (P) in
  S.run ~n ~jobs ~max_depth ~max_states ~name
    ~seeds:(S.everywhere_seeds ~max_seeds)
    p

let check_me1_everywhere proto ~n ?jobs ?max_depth ?max_states ?max_seeds () =
  check_everywhere proto ~n ?jobs ?max_depth ?max_states ?max_seeds ~name:"ME1"
    me1

let replay (module P : Graybox.Protocol.S) ~n trace =
  let module S = Search (P) in
  let ctx = S.make_ctx ~n in
  let rec go k = function
    | [] -> Some (S.views ctx k)
    | l :: tl -> (
      match
        List.find_opt (fun (l', _) -> l' = l) (S.successor_list ctx k)
      with
      | Some (_, k') -> go k' tl
      | None -> None)
  in
  go (S.initial ctx) trace
