(* The experiment harness: regenerates every table/figure of the
   reproduction (see DESIGN.md §4 and EXPERIMENTS.md).

   The paper (DSN 2001) is conceptual and contains no quantitative
   evaluation; its "results" are Figure 1, Theorems 1-10 and
   Corollary 11, plus informal claims about the wrapper (recovers the
   §4 deadlock; the timeout delta trades repeated requests for
   recovery latency; one wrapper serves every implementation).  Each
   table below operationalizes one of those, and T7 adds Bechamel
   microbenchmarks of the infrastructure.

   Usage:  dune exec bench/main.exe            (all tables)
           dune exec bench/main.exe t3 t4      (a subset)            *)

open Stdext

(* Worker domains for the seed sweeps and the perf campaign; set by
   --jobs N (default: the whole machine).  Every table prints the same
   numbers for every value — the sweeps are seed-deterministic and
   Pool.map preserves input order. *)
let jobs = ref (Pool.default_jobs ())

let seeds = [ 101; 202; 303 ]

(* Protocol dispatch goes through Graybox.Registry (filled by
   Tme.Scenarios, which this binary links): roles and capabilities
   drive which protocols each table sweeps, and the ablation /
   negative-control modules are referenced directly rather than by
   name, so the registry and its registration site stay the only
   places that spell protocol names. *)
module Registry = Graybox.Registry

let proto name = Option.get (Registry.find_protocol name)
let proto_name (module P : Graybox.Protocol.S) = P.name
let entry_of name = Option.get (Registry.find name)

let ra = proto "ra"
let lamport = proto "lamport"
let central = proto "central"

let mean_opt xs =
  (* mean over the Some values; "-" if none *)
  match List.filter_map Fun.id xs with
  | [] -> None
  | ys -> Some (Stats.mean_int ys)

let cell_opt_float = function
  | None -> "-"
  | Some m -> Tabular.cell_float ~decimals:0 m

let cell_mean_opt xs = cell_opt_float (mean_opt xs)

(* ------------------------------------------------------------------ *)
(* T1: Figure 1 and Theorem 1, model-checked                           *)

let t1 () =
  let open Kernel in
  let table = Tabular.create [ "claim"; "checked"; "expected" ] in
  let row claim value expected =
    Tabular.add_row table [ claim; Tabular.cell_bool value; expected ]
  in
  row "[C => A]init" (Tsys.implements_from_init Fig1.c Fig1.a) "yes";
  row "[C => A] (everywhere)" (Tsys.everywhere_implements Fig1.c Fig1.a) "no";
  row "A stabilizing to A" (Tsys.is_stabilizing_to Fig1.a Fig1.a) "yes";
  row "C stabilizing to A" (Tsys.is_stabilizing_to Fig1.c Fig1.a) "no";
  row "Theorem 1 hypotheses"
    (Theorem1.hypotheses_hold ~c:Theorem1.c ~a:Theorem1.a ~w:Theorem1.w
       ~w':Theorem1.w')
    "yes";
  row "C box W' stabilizing to A"
    (Tsys.is_stabilizing_to (Tsys.box Theorem1.c Theorem1.w') Theorem1.a)
    "yes";
  (match Tsys.stabilization_counterexample Fig1.c Fig1.a with
   | Some w ->
     Tabular.add_row table
       [ "witness (no legit suffix)";
         String.concat "->" (List.map (Tsys.name Fig1.c) w);
         "s*" ]
   | None -> Tabular.add_row table [ "witness"; "none"; "s*" ]);
  Tabular.print ~title:"T1: Figure 1 counterexample + Theorem 1 (exact)" table

(* ------------------------------------------------------------------ *)
(* T2: fault-coverage matrix (Theorem 8, Corollary 11)                 *)

let fault_classes =
  [ ("drop-requests (deadlock)",
     fun at -> [ Tme.Scenarios.Drop_requests_window { from_t = at; until_t = at + 60 } ]);
    ("message loss", fun at -> [ Tme.Scenarios.Drop_any { at; per_chan = 5 } ]);
    ("duplication", fun at -> [ Tme.Scenarios.Duplicate { at; per_chan = 3 } ]);
    ("message corruption",
     fun at -> [ Tme.Scenarios.Corrupt_messages { at; per_chan = 3 } ]);
    ("reordering", fun at -> [ Tme.Scenarios.Reorder { at; per_chan = 3 } ]);
    ("channel flush", fun at -> [ Tme.Scenarios.Flush { at } ]);
    ("state corruption",
     fun at -> [ Tme.Scenarios.Corrupt_state { at; procs = Sim.Faults.Any_proc } ]);
    ("improper init",
     fun at -> [ Tme.Scenarios.Reset_state { at; procs = Sim.Faults.Proc 1 } ]);
    ("partition",
     fun at -> [ Tme.Scenarios.Partition { pid = 1; from_t = at; until_t = at + 80 } ]);
    ("burst", fun at -> Tme.Scenarios.burst ~at) ]

let coverage proto ~wrapper faults =
  let outcomes =
    List.map
      (fun seed ->
        let r =
          Tme.Scenarios.run proto ~n:4 ~seed ~steps:9000 ~wrapper
            ~faults:(faults 800)
        in
        (r.analysis.recovered, r.recovery_latency))
      seeds
  in
  let recovered = List.for_all fst outcomes in
  let latency = mean_opt (List.map snd outcomes) in
  (recovered, latency)

let t2 () =
  (* the default chaos sweep, as columns: unwrapped + wrapped for the
     recovery-gated protocols, wrapped only for the negative control *)
  let configs =
    List.concat_map
      (fun name ->
        let e = entry_of name in
        let p = e.Registry.proto in
        let wrapped = (name ^ "+W", p, Tme.Scenarios.wrapped ~delta:4 ()) in
        if e.Registry.expectation = Registry.Expect_failure then [ wrapped ]
        else [ (name, p, Graybox.Harness.Off); wrapped ])
      (Registry.default_sweep ())
  in
  let table =
    Tabular.create
      ("fault class" :: List.map (fun (name, _, _) -> name) configs)
  in
  let rows =
    Pool.map ~jobs:!jobs
      (fun (fname, faults) ->
        let cells =
          List.map
            (fun (_, proto, wrapper) ->
              let recovered, latency = coverage proto ~wrapper faults in
              if recovered then
                Printf.sprintf "ok(%s)" (cell_opt_float latency)
              else "STUCK")
            configs
        in
        fname :: cells)
      fault_classes
  in
  List.iter (Tabular.add_row table) rows;
  Tabular.print
    ~title:
      "T2: recovery per fault class (3 seeds each; ok(latency in steps) or \
       STUCK)"
    table

(* ------------------------------------------------------------------ *)
(* T3: stabilization scalability in n                                  *)

let t3 () =
  (* one protocol list drives both the column headers and the rows, so
     adding a protocol cannot desynchronize them: the recovery-gated
     (Reference) members of the default chaos sweep *)
  let protos =
    List.filter
      (fun e -> e.Registry.role = Registry.Reference)
      (List.map entry_of (Registry.default_sweep ()))
  in
  let table =
    Tabular.create
      ("n"
      :: List.concat_map
           (fun e ->
             List.map
               (fun suffix -> e.Registry.name ^ suffix)
               [ "+W recovery"; "+W svc p50"; "+W svc p95"; "+W wrapper msgs" ])
           protos)
  in
  let rows =
    Pool.map ~jobs:!jobs
    (fun n ->
      let steps = 6000 + (1500 * n) in
      let measure proto =
        let runs =
          List.map
            (fun seed ->
              Tme.Scenarios.run proto ~n ~seed ~steps
                ~wrapper:(Tme.Scenarios.wrapped ~delta:4 ())
                ~faults:(Tme.Scenarios.burst ~at:1000))
            seeds
        in
        let latency =
          mean_opt (List.map (fun r -> r.Tme.Scenarios.recovery_latency) runs)
        in
        let wmsgs =
          Stats.mean_int (List.map (fun r -> r.Tme.Scenarios.wrapper_sends) runs)
        in
        (* post-fault per-request service latencies, pooled over seeds *)
        let services =
          List.concat_map
            (fun r ->
              let after =
                Option.value ~default:0
                  r.Tme.Scenarios.analysis.Graybox.Stabilize.last_fault_index
              in
              List.map float_of_int
                (Graybox.Stabilize.service_times ~after r.Tme.Scenarios.vtrace))
            runs
        in
        (latency, Stats.percentile 50. services, Stats.percentile 95. services, wmsgs)
      in
      string_of_int n
      :: List.concat_map
           (fun e ->
             let lat, p50, p95, w = measure e.Registry.proto in
             [ cell_opt_float lat;
               Tabular.cell_float ~decimals:0 p50;
               Tabular.cell_float ~decimals:0 p95;
               Tabular.cell_float ~decimals:0 w ])
           protos)
    [ 2; 3; 5; 8; 12 ]
  in
  List.iter (Tabular.add_row table) rows;
  Tabular.print
    ~title:
      "T3: recovery latency, post-fault service-latency percentiles, and \
       wrapper traffic vs n (burst fault, 3 seeds pooled)"
    table

(* ------------------------------------------------------------------ *)
(* T4: W'(delta) timeout tuning + refined/unrefined ablation           *)

let t4 () =
  let faults at =
    [ Tme.Scenarios.Drop_requests_window { from_t = at; until_t = at + 60 } ]
  in
  let table =
    Tabular.create
      [ "wrapper"; "msgs/1k steps (fault-free)"; "msgs/1k steps (faulty)";
        "recovered"; "recovery latency" ]
  in
  let measure variant delta =
    let clean =
      List.map
        (fun seed ->
          (Tme.Scenarios.run ra ~n:4 ~seed ~steps:6000
             ~wrapper:(Tme.Scenarios.wrapped ~variant ~delta ()))
            .wrapper_sends)
        seeds
    in
    let faulty =
      List.map
        (fun seed ->
          Tme.Scenarios.run ra ~n:4 ~seed ~steps:9000
            ~wrapper:(Tme.Scenarios.wrapped ~variant ~delta ())
            ~faults:(faults 800))
        seeds
    in
    let per_1k sends steps = Stats.mean_int sends *. 1000. /. float_of_int steps in
    ( per_1k clean 6000,
      per_1k (List.map (fun r -> r.Tme.Scenarios.wrapper_sends) faulty) 9000,
      List.for_all (fun r -> r.Tme.Scenarios.analysis.recovered) faulty,
      mean_opt (List.map (fun r -> r.Tme.Scenarios.recovery_latency) faulty) )
  in
  let rows =
    Pool.map ~jobs:!jobs
      (fun delta ->
        let clean, faulty, recovered, latency =
          measure Graybox.Wrapper.Refined delta
        in
        [ (if delta = 0 then "W (refined)" else Printf.sprintf "W'(%d)" delta);
          Tabular.cell_float clean;
          Tabular.cell_float faulty;
          Tabular.cell_bool recovered;
          cell_opt_float latency ])
      [ 0; 1; 2; 4; 8; 16; 32; 64 ]
  in
  List.iter (Tabular.add_row table) rows;
  Tabular.add_sep table;
  let clean, faulty, recovered, latency =
    measure Graybox.Wrapper.Unrefined 4
  in
  Tabular.add_row table
    [ "W'(4) unrefined (ablation)";
      Tabular.cell_float clean;
      Tabular.cell_float faulty;
      Tabular.cell_bool recovered;
      cell_opt_float latency ];
  Tabular.print
    ~title:
      "T4: the timeout wrapper W'(delta) on Ricart-Agrawala (deadlock fault, \
       3 seeds)"
    table

(* ------------------------------------------------------------------ *)
(* T5: message complexity per CS entry                                 *)

let t5 () =
  (* every Reference implementation, measured against its textbook
     per-entry message count where one is known *)
  let references = Registry.all ~role:Registry.Reference () in
  let formula name =
    match name with
    | "ra" | "ra-gcl" -> Some ("2(n-1)", fun n -> 2 * (n - 1))
    | "lamport" -> Some ("3(n-1)", fun n -> 3 * (n - 1))
    | _ -> None
  in
  let table =
    Tabular.create
      ("n"
      :: List.concat_map
           (fun e ->
             e.Registry.name
             ::
             (match formula e.Registry.name with
              | Some (label, _) -> [ label ]
              | None -> []))
           references
      @ [ "wrapper W'(16)" ])
  in
  let rows =
    Pool.map ~jobs:!jobs
    (fun n ->
      let per_entry proto ~wrapper =
        let runs =
          List.map
            (fun seed ->
              Tme.Scenarios.run proto ~n ~seed ~steps:9000 ~wrapper)
            seeds
        in
        let protocol =
          Stats.mean
            (List.map
               (fun r ->
                 float_of_int r.Tme.Scenarios.protocol_sends
                 /. float_of_int (max 1 r.Tme.Scenarios.total_entries))
               runs)
        in
        let wrapper_per_entry =
          Stats.mean
            (List.map
               (fun r ->
                 float_of_int r.Tme.Scenarios.wrapper_sends
                 /. float_of_int (max 1 r.Tme.Scenarios.total_entries))
               runs)
        in
        (protocol, wrapper_per_entry)
      in
      let _, wrap_m =
        per_entry ra ~wrapper:(Tme.Scenarios.wrapped ~delta:16 ())
      in
      string_of_int n
      :: List.concat_map
           (fun e ->
             let measured, _ =
               per_entry e.Registry.proto ~wrapper:Graybox.Harness.Off
             in
             Tabular.cell_float measured
             ::
             (match formula e.Registry.name with
              | Some (_, f) -> [ Tabular.cell_int (f n) ]
              | None -> []))
           references
      @ [ Tabular.cell_float wrap_m ])
    [ 3; 5; 8 ]
  in
  List.iter (Tabular.add_row table) rows;
  Tabular.print
    ~title:
      "T5: protocol messages per CS entry, fault-free (3 seeds); wrapper \
       column = extra W'(16) messages per entry"
    table

(* ------------------------------------------------------------------ *)
(* T6: specification-monitor conformance (Theorem 5)                   *)

let t6 () =
  let table =
    Tabular.create
      [ "protocol"; "Lspec safety"; "Lspec liveness"; "ME1"; "ME2"; "ME3" ]
  in
  let verdict_cell r v =
    match v with
    | Unityspec.Temporal.Violated _ -> "VIOLATED"
    | v ->
      if
        Unityspec.Temporal.ok_with_tail
          ~trace_len:(List.length r.Tme.Scenarios.vtrace) ~margin:150 v
      then "ok"
      else "pending"
  in
  List.iter
    (fun (e : Registry.entry) ->
      let name = e.Registry.name and proto = e.Registry.proto in
      let r = Tme.Scenarios.run proto ~n:4 ~seed:11 ~steps:6000 in
      let lspec = Tme.Scenarios.lspec_report r in
      let safety_ok = Unityspec.Report.safe lspec in
      let liveness_ok =
        List.for_all
          (fun (e : Unityspec.Report.entry) ->
            Unityspec.Temporal.ok_with_tail
              ~trace_len:(List.length r.vtrace) ~margin:150 e.verdict)
          lspec
      in
      Tabular.add_row table
        [ name;
          (if safety_ok then "ok" else "VIOLATED");
          (if liveness_ok then "ok" else "pending");
          verdict_cell r (Graybox.Tme_spec.me1 r.vtrace);
          verdict_cell r (Graybox.Tme_spec.me2 ~n:4 r.vtrace);
          verdict_cell r (Graybox.Tme_spec.me3 r.entry_log) ])
    (List.filter (fun e -> e.Registry.lspec_monitorable) (Registry.all ()));
  Tabular.print
    ~title:
      "T6: Lspec and TME_Spec monitors on fault-free runs (Theorem 5); \
       non-Lspec-monitorable registry entries omitted"
    table

(* ------------------------------------------------------------------ *)
(* T7: Bechamel microbenchmarks                                        *)

let bench_targets : (string * (unit -> unit)) list =
  let sim_throughput proto ~wrapper () =
    ignore
      (Tme.Scenarios.run proto ~n:4 ~seed:1 ~steps:1000 ~record:false ~wrapper)
  in
  [ ("sim-1k-steps/ra", sim_throughput ra ~wrapper:Graybox.Harness.Off);
    ("sim-1k-steps/ra+W",
     sim_throughput ra ~wrapper:(Tme.Scenarios.wrapped ~delta:4 ()));
    ("sim-1k-steps/lamport", sim_throughput lamport ~wrapper:Graybox.Harness.Off);
    ("sim-1k-steps/lamport+W",
     sim_throughput lamport ~wrapper:(Tme.Scenarios.wrapped ~delta:4 ()));
    ("sim-1k-steps/central", sim_throughput central ~wrapper:Graybox.Harness.Off);
    ("record+analyse-1k-steps/ra",
     fun () ->
       let r = Tme.Scenarios.run ra ~n:4 ~seed:1 ~steps:1000 in
       ignore r.Tme.Scenarios.analysis);
    ("lspec-monitors-1k-steps/ra",
     let r = Tme.Scenarios.run ra ~n:4 ~seed:1 ~steps:1000 in
     fun () -> ignore (Tme.Scenarios.lspec_report r));
    ("kernel/fig1-checks",
     fun () ->
       ignore (Kernel.Tsys.is_stabilizing_to Kernel.Fig1.c Kernel.Fig1.a);
       ignore (Kernel.Tsys.is_stabilizing_to Kernel.Fig1.a Kernel.Fig1.a));
    ("rvc-1k-steps",
     fun () ->
       ignore
         (Rvc.System.run
            { Rvc.System.n = 4; bound = 60; wrapper = true }
            ~seed:1 ~steps:1000)) ]

let t7 () =
  let open Bechamel in
  let tests =
    List.map
      (fun (name, f) -> Test.make ~name (Staged.stage f))
      bench_targets
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false
      ~predictors:[| Measure.run |]
  in
  let table = Tabular.create [ "microbenchmark"; "time/run" ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analysis = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          let cell =
            match Analyze.OLS.estimates ols_result with
            | Some [ ns ] ->
              if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
              else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
              else Printf.sprintf "%.0f ns" ns
            | _ -> "?"
          in
          Tabular.add_row table [ name; cell ])
        analysis)
    tests;
  Tabular.print ~title:"T7: microbenchmarks (Bechamel, monotonic clock)" table

(* ------------------------------------------------------------------ *)
(* T8: RVC extension                                                   *)

let t8 () =
  let table =
    Tabular.create
      [ "configuration"; "recovered"; "recovery steps"; "resets";
        "ill-formed at end" ]
  in
  let run (wrapper, corrupt, label) =
    let outcomes =
      List.map
        (fun seed ->
          Rvc.System.run
            ?corrupt_at:(if corrupt then Some 500 else None)
            { Rvc.System.n = 4; bound = 60; wrapper }
            ~seed ~steps:5000)
        seeds
    in
    [ label;
      Tabular.cell_bool
        (List.for_all (fun o -> o.Rvc.System.recovered) outcomes);
      cell_mean_opt (List.map (fun o -> o.Rvc.System.recovery_steps) outcomes);
      Tabular.cell_float ~decimals:0
        (Stats.mean_int (List.map (fun o -> o.Rvc.System.resets) outcomes));
      Tabular.cell_float ~decimals:1
        (Stats.mean_int (List.map (fun o -> o.Rvc.System.ill_at_end) outcomes)) ]
  in
  let rows =
    Pool.map ~jobs:!jobs run
      [ (true, false, "wrapped, fault-free (overflow recycling)");
        (true, true, "wrapped, all clocks corrupted at t=500");
        (false, true, "unwrapped, all clocks corrupted at t=500") ]
  in
  List.iter (Tabular.add_row table) rows;
  Tabular.print
    ~title:"T8: resettable vector clocks (level-1 reset wrapper; 3 seeds)"
    table

(* ------------------------------------------------------------------ *)
(* T9: Lamport modification ablation                                   *)

let t9 () =
  (* the ablation ladder names its rungs by experiment stage, not by
     registry name; the modules are referenced directly *)
  let variants =
    [ ("m0 (original)", (module Tme.Lamport_unmodified : Graybox.Protocol.S));
      ("m1 (dedup insert)", (module Tme.Lamport_ablation.M1));
      ("m1+2 (<= head)", (module Tme.Lamport_ablation.M12));
      ("m1+2+3 (release echo)", lamport) ]
  in
  let table =
    Tabular.create
      ("fault class (all with W'(4))" :: List.map fst variants)
  in
  let rows =
    Pool.map ~jobs:!jobs
      (fun (fname, faults) ->
        let cells =
          List.map
            (fun (_, proto) ->
              let recovered, latency =
                coverage proto ~wrapper:(Tme.Scenarios.wrapped ~delta:4 ())
                  faults
              in
              if recovered then Printf.sprintf "ok(%s)" (cell_opt_float latency)
              else "STUCK")
            variants
        in
        fname :: cells)
      fault_classes
  in
  List.iter (Tabular.add_row table) rows;
  Tabular.print
    ~title:
      "T9: which of the paper's Lamport modifications rescues which fault \
       class (wrapped, 3 seeds)"
    table;
  (* the release echo (modification 3) matters exactly when some
     process never requests: nothing else ever purges a phantom queue
     entry naming it *)
  let passive_seeds = List.init 12 (fun i -> i + 1) in
  let table2 =
    Tabular.create [ "variant"; "recovered (state corruption, passive peer)" ]
  in
  List.iter
    (fun (label, proto) ->
      let ok =
        List.length
          (List.filter Fun.id
             (Pool.map ~jobs:!jobs
                (fun seed ->
                  (Tme.Scenarios.run proto ~n:4 ~seed ~steps:9000
                     ~passive:[ 3 ]
                     ~wrapper:(Tme.Scenarios.wrapped ~delta:4 ())
                     ~faults:
                       [ Tme.Scenarios.Corrupt_state
                           { at = 800; procs = Sim.Faults.Any_proc } ])
                    .analysis.recovered)
                passive_seeds))
      in
      Tabular.add_row table2
        [ label; Printf.sprintf "%d/%d" ok (List.length passive_seeds) ])
    [ ("m1+2 (no release echo)",
       (module Tme.Lamport_ablation.M12 : Graybox.Protocol.S));
      ("m1+2+3 (release echo)", lamport) ];
  Tabular.print
    ~title:
      "T9b: the release echo is needed when a peer never requests \
       (process 3 passive, 12 corruption draws)"
    table2

(* ------------------------------------------------------------------ *)
(* T10: whitebox contrast (Dijkstra's K-state ring)                    *)

let t10 () =
  let table =
    Tabular.create
      [ "system"; "stabilization designed..."; "recovered"; "recovery steps" ]
  in
  let kstate_recoveries =
    Pool.map ~jobs:!jobs
      (fun seed ->
        (Kstate.run ~corrupt_at:500 ~n:5 ~k:6 ~seed ~steps:4000 ())
          .Kstate.recovery_steps)
      seeds
  in
  Tabular.add_row table
    [ "Dijkstra K-state ring (n=5)"; "into the implementation (whitebox)";
      Tabular.cell_bool (List.for_all Option.is_some kstate_recoveries);
      cell_mean_opt kstate_recoveries ];
  let tme_recoveries =
    Pool.map ~jobs:!jobs
      (fun seed ->
        (Tme.Scenarios.run ra ~n:5 ~seed ~steps:10000
           ~wrapper:(Tme.Scenarios.wrapped ~delta:4 ())
           ~faults:(Tme.Scenarios.burst ~at:500))
          .Tme.Scenarios.recovery_latency)
      seeds
  in
  Tabular.add_row table
    [ "RA + graybox wrapper (n=5)"; "by a spec-derived wrapper (graybox)";
      Tabular.cell_bool (List.for_all Option.is_some tme_recoveries);
      cell_mean_opt tme_recoveries ];
  Tabular.print
    ~title:
      "T10: whitebox vs graybox stabilization, side by side (state \
       corruption of every process, 3 seeds)"
    table

(* ------------------------------------------------------------------ *)
(* T11: exhaustive safety within bounds (model checker)                *)

let t11 () =
  let table =
    Tabular.create
      [ "protocol"; "n"; "depth"; "states explored"; "ME1 verdict" ]
  in
  let row name proto n depth =
    match Mcheck.check_me1 proto ~n ~max_depth:depth () with
    | Mcheck.Ok stats ->
      Tabular.add_row table
        [ name; string_of_int n; string_of_int depth;
          string_of_int stats.Mcheck.explored; "safe (exhaustive)" ]
    | Mcheck.Violation { trace; stats; _ } ->
      Tabular.add_row table
        [ name; string_of_int n; string_of_int depth;
          string_of_int stats.Mcheck.explored;
          Printf.sprintf "VIOLATED in %d steps" (List.length trace) ]
  in
  let row_p proto n depth = row (proto_name proto) proto n depth in
  row_p (module Tme.Ra_me : Graybox.Protocol.S) 2 30;
  row_p (module Tme.Ra_me) 3 14;
  row_p (module Gcl.Ra_gcl) 2 24;
  row_p (module Tme.Lamport_me) 2 24;
  row_p (module Tme.Lamport_me) 3 12;
  Tabular.add_sep table;
  row
    (proto_name (module Tme.Ra_mutant) ^ " (reply while eating)")
    (module Tme.Ra_mutant) 2 20;
  Tabular.print
    ~title:
      "T11: mutual exclusion under ALL schedules (bounded exhaustive \
       exploration; the mutant row validates the checker)"
    table

(* ------------------------------------------------------------------ *)
(* perf: the tracked engine/campaign benchmark (BENCH_engine.json)     *)

(* A token-passing ring: one send per action, channels mostly empty —
   stresses the per-step scheduler bookkeeping with shallow queues. *)
module Ring_node = struct
  type state = { self : int; n : int; count : int }
  type msg = Ping

  let receive ~self:_ ~from:_ Ping s = ({ s with count = s.count + 1 }, [])

  let actions ~self:_ _ =
    [ ("gossip",
       fun s ->
         ( { s with count = s.count + 1 },
           [ ((s.self + 1) mod s.n, Ping) ] )) ]
end

(* A broadcaster: every internal action sends to all peers, so most
   channels stay nonempty and queues run deep — the regime where a
   per-step O(n^2) channel scan or an eager trace snapshot is ruinous. *)
module Cast_node = struct
  type state = { self : int; n : int; got : int }
  type msg = Cast

  let receive ~self:_ ~from:_ Cast s = ({ s with got = s.got + 1 }, [])

  let actions ~self:_ _ =
    [ ("cast",
       fun s ->
         ( s,
           List.filter_map
             (fun p -> if p = s.self then None else Some (p, Cast))
             (List.init s.n (fun i -> i)) )) ]
end

module Ring_engine = Sim.Engine.Make (Ring_node)
module Cast_engine = Sim.Engine.Make (Cast_node)

let wall f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

type perf_row = {
  workload : string;
  pn : int;
  precord : bool;
  psteps : int;
  steps_per_sec : float;
}

let perf_engine_rows () =
  let runner workload ~record n =
    match workload with
    | "ring" ->
      fun steps ->
        let e =
          Ring_engine.create
            (Ring_engine.config ~record ~n ~seed:42 ())
            ~init:(fun self -> { Ring_node.self; n; count = 0 })
        in
        Ring_engine.run ~steps e
    | "cast" ->
      (* deliver_weight 1 (= internal_weight) keeps sends ahead of
         deliveries, so in-flight traffic grows into the hundreds *)
      fun steps ->
        let e =
          Cast_engine.create
            (Cast_engine.config ~record ~deliver_weight:1 ~n ~seed:42 ())
            ~init:(fun self -> { Cast_node.self; n; got = 0 })
        in
        Cast_engine.run ~steps e
    | "ra-scenario" ->
      fun steps ->
        ignore
          (Tme.Scenarios.run ra ~n ~seed:42 ~steps ~record
             ~wrapper:(Tme.Scenarios.wrapped ~delta:4 ()))
    | w -> invalid_arg ("perf: unknown workload " ^ w)
  in
  let measure (workload, record, n) =
    let run = runner workload ~record n in
    run 2000 (* warm-up: code and minor heap *);
    let steps =
      match (workload, record) with
      | "ring", false -> 200_000
      | "ring", true | "cast", _ -> 50_000
      | _ -> 20_000
    in
    let dt = wall (fun () -> run steps) in
    { workload; pn = n; precord = record; psteps = steps;
      steps_per_sec = float_of_int steps /. dt }
  in
  (* one config per row; rows are independent, so sweep them in the pool *)
  let grid =
    List.concat_map
      (fun workload ->
        List.concat_map
          (fun record -> List.map (fun n -> (workload, record, n)) [ 3; 5; 8 ])
          [ false; true ])
      [ "ring"; "cast" ]
    @ List.map (fun n -> ("ra-scenario", false, n)) [ 3; 5; 8 ]
  in
  (* timing under contention is unfair: measure serially even when
     --jobs > 1 so the steps/sec numbers are comparable run to run *)
  List.map measure grid

let perf_campaign () =
  (* a small but real sweep: every default cell, shrinking off so the
     number is dominated by row execution, not counterexample search *)
  let cfg jobs =
    Chaos.Campaign.config ~base_seed:7 ~seeds:12 ~budget:4 ~n:3 ~steps:1500
      ~delta:4 ~shrink:false ~jobs ()
  in
  let serial = wall (fun () -> ignore (Chaos.Campaign.run (cfg 1))) in
  let parallel =
    if !jobs = 1 then serial
    else wall (fun () -> ignore (Chaos.Campaign.run (cfg !jobs)))
  in
  (serial, parallel)

let perf () =
  let rows = perf_engine_rows () in
  let serial, parallel = perf_campaign () in
  let table =
    Tabular.create [ "workload"; "n"; "record"; "steps"; "steps/sec" ]
  in
  List.iter
    (fun r ->
      Tabular.add_row table
        [ r.workload; string_of_int r.pn; Tabular.cell_bool r.precord;
          string_of_int r.psteps;
          Tabular.cell_float ~decimals:0 r.steps_per_sec ])
    rows;
  Tabular.print ~title:"PERF: engine steps/sec (single domain)" table;
  let ctable =
    Tabular.create [ "campaign (5 cells x 12 seeds)"; "wall-clock s"; "speedup" ]
  in
  Tabular.add_row ctable
    [ "serial (--jobs 1)"; Tabular.cell_float serial; "1.0" ];
  Tabular.add_row ctable
    [ Printf.sprintf "parallel (--jobs %d)" !jobs;
      Tabular.cell_float parallel;
      Tabular.cell_float ~decimals:1 (serial /. parallel) ];
  Tabular.print ~title:"PERF: chaos-campaign wall-clock" ctable;
  let json =
    Chaos.Jsonx.(
      Obj
        [ ("schema", String "graybox-bench-engine/1");
          ("engine",
           List
             (List.map
                (fun r ->
                  Obj
                    [ ("workload", String r.workload);
                      ("n", Int r.pn);
                      ("record", Bool r.precord);
                      ("steps", Int r.psteps);
                      ("steps_per_sec", Float r.steps_per_sec) ])
                rows));
          ("campaign",
           Obj
             [ ("seeds", Int 12); ("budget", Int 4); ("n", Int 3);
               ("steps", Int 1500);
               ("serial_sec", Float serial);
               ("parallel_sec", Float parallel);
               ("parallel_jobs", Int !jobs);
               ("speedup", Float (serial /. parallel)) ]) ])
  in
  Out_channel.with_open_text "BENCH_engine.json" (fun oc ->
      output_string oc (Chaos.Jsonx.to_string json);
      output_char oc '\n');
  print_endline "wrote BENCH_engine.json"

(* ------------------------------------------------------------------ *)
(* mcheck: the tracked model-checker benchmark (BENCH_mcheck.json)      *)

type mc_cfg = {
  mc_label : string;
  mc_proto : (module Graybox.Protocol.S);
  mc_n : int;
  mc_depth : int;
  mc_ew : bool;
  mc_jobs : int;
  mc_budget : int;  (* max_int = never spill *)
  mc_por : bool;
}

let mcheck_bench () =
  let stats_of = function
    | Mcheck.Ok s -> (s, false)
    | Mcheck.Violation { stats; _ } -> (stats, true)
  in
  let measure c =
    let check () =
      if c.mc_ew then
        Mcheck.check_me1_everywhere c.mc_proto ~n:c.mc_n ~jobs:c.mc_jobs
          ~shards:(min c.mc_jobs 64) ~max_depth:c.mc_depth
          ~max_states:1_000_000 ~mem_budget:c.mc_budget ~por:c.mc_por ()
      else
        Mcheck.check_me1 c.mc_proto ~n:c.mc_n ~jobs:c.mc_jobs
          ~shards:(min c.mc_jobs 64) ~max_depth:c.mc_depth
          ~max_states:1_000_000 ~mem_budget:c.mc_budget ~por:c.mc_por ()
    in
    let r = check () in
    let dt = wall (fun () -> ignore (check ())) in
    let stats, violated = stats_of r in
    (c, stats, violated, dt, r)
  in
  (* The n=3 depth-16 workload (>=100k states) is the anchor: it runs
     serially, sharded at jobs 2 and 8 (the checker promises identical
     results for every jobs/shards value — asserted on each run),
     spill-forced under a tight memory budget (identical results
     modulo the memory figures — also asserted), and once with POR
     (same verdict from strictly fewer states — asserted). *)
  let base =
    { mc_label = "ra"; mc_proto = ra; mc_n = 3; mc_depth = 16;
      mc_ew = false; mc_jobs = 1; mc_budget = max_int; mc_por = false }
  in
  let grid =
    [ { base with mc_n = 2; mc_depth = 30 };
      { base with mc_depth = 14 };
      base;
      { base with mc_jobs = 2 };
      { base with mc_jobs = 8 };
      { base with mc_jobs = 2; mc_budget = 100_000 };
      { base with mc_por = true };
      (* depth 17 reaches the stale-reply hazard (see EXPERIMENTS.md):
         tracked here so the counterexample's cost stays visible *)
      { base with mc_depth = 17 };
      { base with mc_n = 2; mc_depth = 6; mc_ew = true };
      { base with mc_label = proto_name (module Tme.Ra_mutant);
        mc_proto = (module Tme.Ra_mutant : Graybox.Protocol.S);
        mc_n = 2; mc_depth = 12 } ]
  in
  let rows = List.map measure grid in
  let anchor c =
    c.mc_label = "ra" && c.mc_n = 3 && c.mc_depth = 16 && not c.mc_ew
  in
  let find p = List.find (fun (c, _, _, _, _) -> p c) rows in
  let _, s_serial, _, _, r_serial = find (fun c -> anchor c && c.mc_jobs = 1
                                                   && c.mc_budget = max_int
                                                   && not c.mc_por) in
  List.iter
    (fun (c, s, _, _, r) ->
      if anchor c && c.mc_budget = max_int && not c.mc_por
         && not (s = s_serial && r = r_serial)
      then failwith "mcheck bench: results differ across --jobs values")
    rows;
  (let _, s_spill, _, _, _ =
     find (fun c -> anchor c && c.mc_budget <> max_int)
   in
   if s_spill.Mcheck.spill_bytes = 0 then
     failwith "mcheck bench: the spill row never spilled";
   if
     { s_spill with Mcheck.peak_mem_words = 0; spill_bytes = 0 }
     <> { s_serial with Mcheck.peak_mem_words = 0; spill_bytes = 0 }
   then failwith "mcheck bench: out-of-core results differ from in-RAM");
  (let _, s_por, _, _, _ = find (fun c -> anchor c && c.mc_por) in
   if s_por.Mcheck.visited >= s_serial.Mcheck.visited then
     failwith "mcheck bench: POR did not reduce the state count");
  let table =
    Tabular.create
      [ "workload"; "mode"; "jobs"; "explored"; "visited"; "verdict";
        "peak-mem-w"; "spill-MB"; "sec"; "states/sec" ]
  in
  List.iter
    (fun (c, (s : Mcheck.stats), violated, dt, _) ->
      Tabular.add_row table
        [ Printf.sprintf "%s n=%d d=%d%s%s" c.mc_label c.mc_n c.mc_depth
            (if c.mc_budget = max_int then "" else " oc")
            (if c.mc_por then " por" else "");
          (if c.mc_ew then "everywhere" else "init");
          string_of_int c.mc_jobs;
          string_of_int s.Mcheck.explored;
          string_of_int s.Mcheck.visited;
          (if violated then "VIOLATED" else "safe");
          string_of_int s.Mcheck.peak_mem_words;
          Tabular.cell_float ~decimals:1
            (float_of_int s.Mcheck.spill_bytes /. 1048576.);
          Tabular.cell_float dt;
          Tabular.cell_float ~decimals:0 (float_of_int s.Mcheck.explored /. dt) ])
    rows;
  Tabular.print
    ~title:
      "MCHECK: checker throughput ('oc' = out-of-core under --mem-budget; \
       identical results asserted across jobs/shards and in-RAM vs spilled)"
    table;
  let json =
    Chaos.Jsonx.(
      Obj
        [ ("schema", String "graybox-bench-mcheck/2");
          ("rows",
           List
             (List.map
                (fun (c, (s : Mcheck.stats), violated, dt, _) ->
                  Obj
                    [ ("protocol", String c.mc_label);
                      ("n", Int c.mc_n);
                      ("depth", Int c.mc_depth);
                      ("mode", String (if c.mc_ew then "everywhere" else "init"));
                      ("jobs", Int c.mc_jobs);
                      ("shards", Int (min c.mc_jobs 64));
                      ( "mem_budget",
                        if c.mc_budget = max_int then Null
                        else Int c.mc_budget );
                      ("por", Bool c.mc_por);
                      ("explored", Int s.Mcheck.explored);
                      ("visited", Int s.Mcheck.visited);
                      ("truncated", Bool s.Mcheck.truncated);
                      ("violation", Bool violated);
                      ("peak_mem_words", Int s.Mcheck.peak_mem_words);
                      ("spill_bytes", Int s.Mcheck.spill_bytes);
                      ("sec", Float dt);
                      ("states_per_sec",
                       Float (float_of_int s.Mcheck.explored /. dt)) ])
                rows)) ])
  in
  Out_channel.with_open_text "BENCH_mcheck.json" (fun oc ->
      output_string oc (Chaos.Jsonx.to_string json);
      output_char oc '\n');
  print_endline "wrote BENCH_mcheck.json"

(* ------------------------------------------------------------------ *)
(* observe: the streaming-observation benchmark (BENCH_observe.json)   *)

let observe_bench () =
  (* 1. Per-step cost and allocation of the two analysis paths on the
     same faulty scenario.  Gc.allocated_bytes is per-domain, so both
     measurements run serially in this domain regardless of --jobs. *)
  let n = 4 and steps = 20_000 in
  let scenario_rows =
    let faults = Tme.Scenarios.burst ~at:2_000 in
    let measure streaming =
      let run () =
        ignore
          (Tme.Scenarios.run ra ~n ~seed:42 ~steps ~faults ~streaming
             ~wrapper:(Tme.Scenarios.wrapped ~delta:4 ()))
      in
      run () (* warm-up *);
      let a0 = Gc.allocated_bytes () in
      let dt = wall run in
      let bytes = Gc.allocated_bytes () -. a0 in
      (float_of_int steps /. dt, bytes /. float_of_int steps)
    in
    List.map
      (fun (label, streaming) ->
        let sps, bps = measure streaming in
        (label, sps, bps))
      [ ("record+analyse", false); ("streaming", true) ]
  in
  let table =
    Tabular.create
      [ "ra+W'(4) analysis path"; "steps/sec"; "bytes alloc/step" ]
  in
  List.iter
    (fun (label, sps, bps) ->
      Tabular.add_row table
        [ label;
          Tabular.cell_float ~decimals:0 sps;
          Tabular.cell_float ~decimals:0 bps ])
    scenario_rows;
  (match scenario_rows with
   | [ (_, _, rec_bps); (_, _, str_bps) ] ->
     Tabular.add_sep table;
     Tabular.add_row table
       [ "allocation ratio (record/streaming)";
         Tabular.cell_float ~decimals:1 (rec_bps /. str_bps); "" ]
   | _ -> ());
  Tabular.print
    ~title:
      (Printf.sprintf
         "OBSERVE: trace-then-analyse vs streaming observers (ra, n=%d, %d \
          steps, burst fault)"
         n steps)
    table;
  (* 2. Early exit on permanent deadlock: the streaming path stops at
     quiescence, the recorded path always runs the full horizon. *)
  let canary_horizon = 8_000 in
  let canary_faults =
    [ Tme.Scenarios.Drop_requests_window { from_t = 400; until_t = 460 } ]
  in
  let canary streaming =
    Tme.Scenarios.run ra ~n ~seed:42 ~steps:canary_horizon
      ~faults:canary_faults ~streaming
  in
  let c_rec = canary false and c_str = canary true in
  if c_str.Tme.Scenarios.analysis <> c_rec.Tme.Scenarios.analysis then
    failwith "observe bench: streaming and recorded analyses differ";
  let ctable =
    Tabular.create [ "deadlock canary"; "engine steps"; "horizon" ]
  in
  List.iter
    (fun (label, r) ->
      Tabular.add_row ctable
        [ label;
          string_of_int r.Tme.Scenarios.sim_steps;
          string_of_int canary_horizon ])
    [ ("record+analyse", c_rec); ("streaming (early exit)", c_str) ];
  Tabular.print
    ~title:
      "OBSERVE: steps actually executed on a deadlocked run (identical \
       analyses asserted)"
    ctable;
  (* 3. A real campaign sweep, recorded vs streaming, at --jobs. *)
  let campaign streaming =
    let cfg =
      Chaos.Campaign.config ~base_seed:7 ~seeds:12 ~budget:4 ~n:3 ~steps:1500
        ~delta:4 ~shrink:false ~jobs:!jobs ~streaming ()
    in
    wall (fun () -> ignore (Chaos.Campaign.run cfg))
  in
  let camp_rec = campaign false in
  let camp_str = campaign true in
  let wtable =
    Tabular.create
      [ Printf.sprintf "campaign (5 cells x 12 seeds, --jobs %d)" !jobs;
        "wall-clock s"; "speedup" ]
  in
  Tabular.add_row wtable
    [ "record+analyse"; Tabular.cell_float camp_rec; "1.0" ];
  Tabular.add_row wtable
    [ "streaming";
      Tabular.cell_float camp_str;
      Tabular.cell_float ~decimals:1 (camp_rec /. camp_str) ];
  Tabular.print ~title:"OBSERVE: chaos-campaign wall-clock by analysis path"
    wtable;
  let json =
    Chaos.Jsonx.(
      Obj
        [ ("schema", String "graybox-bench-observe/1");
          ("scenario",
           List
             (List.map
                (fun (label, sps, bps) ->
                  Obj
                    [ ("path", String label);
                      ("n", Int n);
                      ("steps", Int steps);
                      ("steps_per_sec", Float sps);
                      ("bytes_per_step", Float bps) ])
                scenario_rows));
          ("deadlock_canary",
           Obj
             [ ("horizon", Int canary_horizon);
               ("recorded_steps", Int c_rec.Tme.Scenarios.sim_steps);
               ("streaming_steps", Int c_str.Tme.Scenarios.sim_steps) ]);
          ("campaign",
           Obj
             [ ("seeds", Int 12); ("budget", Int 4); ("n", Int 3);
               ("steps", Int 1500); ("jobs", Int !jobs);
               ("recorded_sec", Float camp_rec);
               ("streaming_sec", Float camp_str);
               ("speedup", Float (camp_rec /. camp_str)) ]) ])
  in
  Out_channel.with_open_text "BENCH_observe.json" (fun oc ->
      output_string oc (Chaos.Jsonx.to_string json);
      output_char oc '\n');
  print_endline "wrote BENCH_observe.json"

(* ------------------------------------------------------------------ *)
(* partition: heal-recovery latency (BENCH_partition.json)             *)

let partition_bench () =
  (* Recovery latency measured FROM THE HEAL (the Split lowering plants
     a Heal marker at until_t), swept over partition width (size of the
     split-off group), heal mode, and the registry's default sweep —
     wrapped with each entry's default delta.  The buffered mode is the
     stress case: everything queued during the window floods in at the
     heal, and the wrapper must drain the stale traffic on top of
     re-establishing service.  The lossy mode is the discriminating
     case: protocols that are not everywhere-implementations stay stuck
     (lost releases leave phantom queue entries no wrapper retracts). *)
  (* the long horizon and wide tail margin keep truncation out of the
     verdicts: a slow-but-served hungry interval still open at the
     trace end would otherwise read as starvation.  True deadlock is
     unaffected — a lossy-split victim stays hungry for the entire
     remaining horizon, far beyond any margin. *)
  let n = 6 and from_t = 800 and until_t = 1200 and steps = 20000 in
  let tail_margin = 2000 in
  let widths = [ 1; 2; 3 ] in
  let modes = [ Sim.Faults.Lossy; Sim.Faults.Buffered ] in
  (* the default sweep plus every entry registered with a non-wedge
     during-partition level: the epoch columns below are the
     instrument those levels are measured with (ra-lease's per-group
     service, the split-brain ablations' unsafety) *)
  let sweep =
    let base = Registry.default_sweep () in
    let extra =
      Registry.all ()
      |> List.filter (fun (e : Registry.entry) ->
             e.Registry.during_partition <> Registry.Wedge
             && not (List.mem e.Registry.name base))
      |> List.map (fun (e : Registry.entry) -> e.Registry.name)
    in
    List.map entry_of (base @ extra)
  in
  let grid =
    List.concat_map
      (fun (e : Registry.entry) ->
        List.concat_map
          (fun width -> List.map (fun mode -> (e, width, mode)) modes)
          widths)
      sweep
  in
  let measure ((e : Registry.entry), width, mode) =
    let faults =
      [ Tme.Scenarios.Split
          { groups = [ List.init width Fun.id ]; from_t; until_t; mode } ]
    in
    let runs =
      List.map
        (fun seed ->
          Tme.Scenarios.run e.Registry.proto ~n ~seed ~steps ~streaming:true
            ~tail_margin
            ~wrapper:(Tme.Scenarios.wrapped ~delta:e.Registry.default_delta ())
            ~faults)
        seeds
    in
    let recovered =
      List.for_all (fun r -> r.Tme.Scenarios.analysis.recovered) runs
    in
    let latency =
      mean_opt (List.map (fun r -> r.Tme.Scenarios.recovery_latency) runs)
    in
    (* during-split service, from the regime-epoch monitors: whether
       every seed's weakened per-epoch spec held, and how many CS
       entries the protocol granted while the partition was up —
       0 for a wedging protocol, >0 for a partition-tolerant one. *)
    let epoch_safe =
      List.for_all
        (fun r ->
          match r.Tme.Scenarios.epoch_spec with
          | Some ep -> Graybox.Tme_spec.Epoch.safe ep
          | None -> true)
        runs
    in
    let split_grants =
      List.fold_left
        (fun acc r ->
          match r.Tme.Scenarios.epoch_spec with
          | Some ep -> acc + ep.Graybox.Tme_spec.Epoch.split_entries
          | None -> acc)
        0 runs
    in
    (e, width, mode, recovered, latency, epoch_safe, split_grants)
  in
  let rows = Pool.map ~jobs:!jobs measure grid in
  let mode_label = function
    | Sim.Faults.Lossy -> "lossy"
    | Sim.Faults.Buffered -> "buffered"
  in
  let table =
    Tabular.create
      [ "protocol+W'(delta)"; "width"; "heal mode"; "recovered";
        "latency after heal"; "during"; "epoch-safe"; "split grants" ]
  in
  List.iter
    (fun ((e : Registry.entry), width, mode, recovered, latency, epoch_safe,
          split_grants) ->
      Tabular.add_row table
        [ Printf.sprintf "%s+W'(%d)" e.Registry.name e.Registry.default_delta;
          Printf.sprintf "%d|%d" width (n - width);
          mode_label mode;
          Tabular.cell_bool recovered;
          cell_opt_float latency;
          Registry.during_partition_label e.Registry.during_partition;
          Tabular.cell_bool epoch_safe;
          Tabular.cell_int split_grants ])
    rows;
  Tabular.print
    ~title:
      (Printf.sprintf
         "PARTITION: recovery latency after heal vs partition width and heal \
          mode (n=%d, window %d-%d, 3 seeds)"
         n from_t until_t)
    table;
  let json =
    Chaos.Jsonx.(
      Obj
        [ ("schema", String "graybox-bench-partition/2");
          ("n", Int n);
          ("from_t", Int from_t);
          ("until_t", Int until_t);
          ("steps", Int steps);
          ("rows",
           List
             (List.map
                (fun ((e : Registry.entry), width, mode, recovered, latency,
                      epoch_safe, split_grants) ->
                  Obj
                    [ ("protocol", String e.Registry.name);
                      ("delta", Int e.Registry.default_delta);
                      ("partition_expect",
                       String
                         (Registry.partition_expectation_label
                            e.Registry.partition_expectation));
                      ("during_partition",
                       String
                         (Registry.during_partition_label
                            e.Registry.during_partition));
                      ("width", Int width);
                      ("mode", String (mode_label mode));
                      ("recovered", Bool recovered);
                      ("latency_after_heal",
                       (match latency with
                        | None -> Null
                        | Some l -> Float l));
                      ("epoch_safe", Bool epoch_safe);
                      ("split_grants", Int split_grants) ])
                rows)) ])
  in
  Out_channel.with_open_text "BENCH_partition.json" (fun oc ->
      output_string oc (Chaos.Jsonx.to_string json);
      output_char oc '\n');
  print_endline "wrote BENCH_partition.json"

(* ------------------------------------------------------------------ *)
(* load: open-loop throughput and latency percentiles (BENCH_load.json) *)

let load_bench () =
  (* Every reference protocol under the same open-loop Poisson
     workload at rate 0.2/n per step (constant offered load as n
     grows, since a grant costs O(n) steps).  Latency percentiles are
     exact (one sorted sample) and measured from each request's
     intended arrival — see EXPERIMENTS.md on coordinated omission.

     Sample sizes: a pX.Y figure computed from fewer than ~2/(1-q)
     samples is just the maximum wearing a suit (the old 80-request
     default produced 62 grants, making p99 and p99.9 the same order
     statistic).  The latency rows (n = 100 and 1000) inject 2000
     requests so p99.9 rests on real tail mass; the n = 10000 row
     tracks throughput scale at 200 requests (2000 would need 1e8
     steps at this rate), and any percentile its sample count cannot
     support is reported as null, not as a lookalike.

     Timing under contention is unfair, so rows run serially
     regardless of --jobs (each row timed on its single run — the 1e7
     steps of the big rows are sample enough); the row CONTENTS are
     seed-deterministic either way. *)
  let sizes = [ (100, 2000); (1_000, 2000); (10_000, 200) ] in
  let references = Registry.all ~role:Registry.Reference () in
  let measure (e : Registry.entry) (n, requests) =
    let t0 = Unix.gettimeofday () in
    let r =
      Tme.Load.run e.Registry.proto ~n ~seed:42
        ~rate:(0.2 /. float_of_int n)
        ~max_requests:requests
        ~max_steps:(((5 * requests) + 400) * n)
        ()
    in
    let dt = Unix.gettimeofday () -. t0 in
    let ps = Tme.Load.percentiles r [ 50.; 99.; 99.9 ] in
    let supported =
      Stats.suppress_unsupported ~samples:r.Tme.Load.grants
        [ 50.; 99.; 99.9 ] ps
    in
    (e, n, r, float_of_int r.Tme.Load.steps_run /. dt, supported)
  in
  let rows =
    List.concat_map (fun e -> List.map (measure e) sizes) references
  in
  let table =
    Tabular.create
      [ "protocol"; "n"; "steps"; "steps/sec"; "granted";
        "p50"; "p99"; "p99.9" ]
  in
  let pct ps i =
    match List.nth_opt ps i with
    | Some (Some p) -> Tabular.cell_float ~decimals:0 p
    | _ -> "-"
  in
  List.iter
    (fun ((e : Registry.entry), n, (r : Tme.Load.result), sps, ps) ->
      Tabular.add_row table
        [ e.Registry.name; string_of_int n;
          string_of_int r.Tme.Load.steps_run;
          Tabular.cell_float ~decimals:0 sps;
          Printf.sprintf "%d/%d" r.Tme.Load.grants r.Tme.Load.requests;
          pct ps 0; pct ps 1; pct ps 2 ])
    rows;
  Tabular.print
    ~title:
      "LOAD: open-loop Poisson workload (rate 0.2/n per step, 2000 requests \
       on the latency rows; latency in steps from intended arrival, '-' = \
       too few samples for that percentile)"
    table;
  let json =
    Chaos.Jsonx.(
      Obj
        [ ("schema", String "graybox-bench-load/1");
          ("rate_per_n", Float 0.2);
          ("rows",
           List
             (List.map
                (fun ((e : Registry.entry), n, (r : Tme.Load.result), sps, ps) ->
                  let pct i =
                    match List.nth_opt ps i with
                    | Some (Some p) -> Float p
                    | _ -> Null
                  in
                  Obj
                    [ ("protocol", String e.Registry.name);
                      ("n", Int n);
                      ("seed", Int r.Tme.Load.seed);
                      ("rate", Float r.Tme.Load.rate);
                      ("max_requests", Int r.Tme.Load.requests);
                      ("steps", Int r.Tme.Load.steps_run);
                      ("steps_per_sec", Float sps);
                      ("requests", Int r.Tme.Load.requests);
                      ("grants", Int r.Tme.Load.grants);
                      ("latency_p50", pct 0);
                      ("latency_p99", pct 1);
                      ("latency_p999", pct 2) ])
                rows)) ])
  in
  Out_channel.with_open_text "BENCH_load.json" (fun oc ->
      output_string oc (Chaos.Jsonx.to_string json);
      output_char oc '\n');
  print_endline "wrote BENCH_load.json"

(* ------------------------------------------------------------------ *)
(* synth: CEGIS wrapper synthesis (BENCH_synth.json)                   *)

let synth_bench () =
  (* Two measurements per synthesizable protocol:

     1. The CEGIS loop itself — candidates tried vs pruned (the
        cex-pruning ratio is the point of the counterexample cache:
        every pruned candidate is an oracle run the examples paid for
        already), oracle throughput, and wall-clock.  The transcript
        is jobs-invariant, so the counts are stable numbers; only the
        timing varies with the machine.

     2. The synthesized term's runtime overhead vs the hand-written
        refined W at the same δ, under the T4 fault (a dropped-requests
        window): wrapper sends per 1k steps, seed-averaged.  The
        synthesized term should tie the hand-written wrapper exactly
        when synthesis rediscovers it (matches = true). *)
  let faults at =
    [ Tme.Scenarios.Drop_requests_window { from_t = at; until_t = at + 60 } ]
  in
  let cfg = Synth.config ~n:2 () in
  let measure (e : Registry.entry) =
    let t0 = Unix.gettimeofday () in
    let r = Synth.synthesize e.Registry.proto cfg in
    let dt = Unix.gettimeofday () -. t0 in
    let sends wrapper =
      Stats.mean_int
        (List.map
           (fun seed ->
             (Tme.Scenarios.run e.Registry.proto ~n:4 ~seed ~steps:9000
                ~wrapper ~faults:(faults 800))
               .Tme.Scenarios.wrapper_sends)
           seeds)
      *. 1000. /. 9000.
    in
    let overhead =
      match r.Synth.synthesized with
      | None -> None
      | Some term ->
        let synth_rate =
          sends (Tme.Scenarios.wrapped_term ~term ~delta:4 ())
        in
        let hand_rate =
          sends
            (Tme.Scenarios.wrapped ~variant:Graybox.Wrapper.Refined ~delta:4
               ())
        in
        Some (synth_rate, hand_rate)
    in
    (e, r, dt, overhead)
  in
  let rows =
    List.map measure
      (List.filter
         (fun (e : Registry.entry) -> e.Registry.synthesizable)
         (Registry.all ()))
  in
  let table =
    Tabular.create
      [ "protocol"; "space"; "checked"; "pruned"; "prune ratio";
        "oracle states"; "states/sec"; "secs"; "term"; "matches W";
        "sends/1k (synth)"; "sends/1k (hand)" ]
  in
  List.iter
    (fun ((e : Registry.entry), (r : Synth.result), dt, overhead) ->
      let tried = r.Synth.checked + r.Synth.pruned in
      Tabular.add_row table
        [ e.Registry.name;
          Tabular.cell_int r.Synth.enumerated;
          Tabular.cell_int r.Synth.checked;
          Tabular.cell_int r.Synth.pruned;
          Tabular.cell_float
            (if tried = 0 then 0.
             else float_of_int r.Synth.pruned /. float_of_int tried);
          Tabular.cell_int r.Synth.oracle_states;
          Tabular.cell_float ~decimals:0
            (float_of_int r.Synth.oracle_states /. dt);
          Printf.sprintf "%.2f" dt;
          (match r.Synth.synthesized with
           | Some w -> Graybox.Wrapper.to_string w
           | None -> "-");
          Tabular.cell_bool
            (match r.Synth.synthesized with
             | Some w -> Graybox.Wrapper.equal w Graybox.Wrapper.w_refined
             | None -> false);
          (match overhead with
           | Some (s, _) -> Tabular.cell_float s
           | None -> "-");
          (match overhead with
           | Some (_, h) -> Tabular.cell_float h
           | None -> "-") ])
    rows;
  Tabular.print
    ~title:
      "SYNTH: CEGIS wrapper synthesis per synthesizable protocol (n=2 \
       oracle; prune ratio = counterexample-pruned / tried; sends/1k = \
       wrapper sends per 1k steps under the T4 fault at delta=4, \
       synthesized term vs hand-written refined W)"
    table;
  let json =
    Chaos.Jsonx.(
      Obj
        [ ("schema", String "graybox-bench-synth/1");
          ("n", Int cfg.Synth.n);
          ("rows",
           List
             (List.map
                (fun ((e : Registry.entry), (r : Synth.result), dt, overhead)
                ->
                  let tried = r.Synth.checked + r.Synth.pruned in
                  Obj
                    [ ("protocol", String e.Registry.name);
                      ("enumerated", Int r.Synth.enumerated);
                      ("checked", Int r.Synth.checked);
                      ("pruned", Int r.Synth.pruned);
                      ( "prune_ratio",
                        Float
                          (if tried = 0 then 0.
                           else
                             float_of_int r.Synth.pruned /. float_of_int tried)
                      );
                      ("oracle_runs", Int r.Synth.oracle_runs);
                      ("oracle_states", Int r.Synth.oracle_states);
                      ( "oracle_states_per_sec",
                        Float (float_of_int r.Synth.oracle_states /. dt) );
                      ("secs", Float dt);
                      ( "synthesized",
                        match r.Synth.synthesized with
                        | Some w -> String (Graybox.Wrapper.to_string w)
                        | None -> Null );
                      ( "matches_handwritten",
                        Bool
                          (match r.Synth.synthesized with
                           | Some w ->
                             Graybox.Wrapper.equal w Graybox.Wrapper.w_refined
                           | None -> false) );
                      ( "wrapper_sends_per_1k_synth",
                        match overhead with
                        | Some (s, _) -> Float s
                        | None -> Null );
                      ( "wrapper_sends_per_1k_hand",
                        match overhead with
                        | Some (_, h) -> Float h
                        | None -> Null ) ])
                rows)) ])
  in
  Out_channel.with_open_text "BENCH_synth.json" (fun oc ->
      output_string oc (Chaos.Jsonx.to_string json);
      output_char oc '\n');
  print_endline "wrote BENCH_synth.json"

(* ------------------------------------------------------------------ *)

let all_tables =
  [ ("t1", t1); ("t2", t2); ("t3", t3); ("t4", t4); ("t5", t5); ("t6", t6);
    ("t7", t7); ("t8", t8); ("t9", t9); ("t10", t10); ("t11", t11);
    ("perf", perf); ("mcheck", mcheck_bench); ("observe", observe_bench);
    ("partition", partition_bench); ("load", load_bench);
    ("synth", synth_bench) ]

let () =
  let usage () =
    Printf.eprintf
      "usage: main.exe [--jobs N] [table ...]  (tables: %s)\n"
      (String.concat ", " (List.map fst all_tables));
    exit 2
  in
  let set_jobs s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> jobs := n
    | Some n ->
      Printf.eprintf "--jobs: need at least 1 worker, got %d\n" n;
      exit 2
    | None ->
      Printf.eprintf "--jobs: not a number: %s\n" s;
      exit 2
  in
  let rec parse = function
    | [] -> []
    | "--jobs" :: v :: rest -> set_jobs v; parse rest
    | [ "--jobs" ] ->
      Printf.eprintf "--jobs: missing argument\n";
      exit 2
    | arg :: rest when String.starts_with ~prefix:"--jobs=" arg ->
      set_jobs (String.sub arg 7 (String.length arg - 7));
      parse rest
    | arg :: _ when String.starts_with ~prefix:"-" arg -> usage ()
    | arg :: rest -> arg :: parse rest
  in
  let requested =
    match parse (List.tl (Array.to_list Sys.argv)) with
    | [] -> List.map fst all_tables
    | names -> names
  in
  List.iter
    (fun name ->
      match List.assoc_opt (String.lowercase_ascii name) all_tables with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown table %s (known: %s)\n" name
          (String.concat ", " (List.map fst all_tables));
        exit 2)
    requested
